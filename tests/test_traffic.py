"""Synthetic traffic pattern and generator tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import NocConfig, OnocConfig
from repro.engine import Simulator
from repro.noc import ElectricalNetwork
from repro.onoc import build_optical_network
from repro.traffic import (
    PATTERNS,
    SyntheticTrafficGenerator,
    bit_complement,
    bit_reverse,
    neighbor,
    run_synthetic,
    tornado,
    transpose,
)

RNG = np.random.default_rng(0)


# ---------------------------------------------------------------- patterns
def test_transpose_is_involution():
    for src in range(16):
        assert transpose(transpose(src, 16, RNG), 16, RNG) == src


def test_transpose_diagonal_fixed_points():
    for k in range(4):
        src = k * 4 + k
        assert transpose(src, 16, RNG) == src


def test_bit_complement_power_of_two():
    assert bit_complement(0, 16, RNG) == 15
    assert bit_complement(5, 16, RNG) == 10


def test_bit_complement_non_power_of_two():
    assert bit_complement(0, 12, RNG) == 11


def test_bit_reverse():
    assert bit_reverse(1, 16, RNG) == 8
    assert bit_reverse(8, 16, RNG) == 1
    assert bit_reverse(0, 16, RNG) == 0
    with pytest.raises(ValueError):
        bit_reverse(0, 12, RNG)


def test_neighbor_wraps():
    assert neighbor(3, 16, RNG) == 0    # x=3 -> x=0 same row
    assert neighbor(0, 16, RNG) == 1


def test_tornado_half_way():
    assert tornado(0, 16, RNG) == 2
    assert tornado(2, 16, RNG) == 0


def test_all_patterns_in_range():
    for name, fn in PATTERNS.items():
        for src in range(16):
            for _ in range(5):
                dst = fn(src, 16, RNG)
                assert 0 <= dst < 16, name


def test_spatial_patterns_need_square():
    with pytest.raises(ValueError):
        transpose(0, 12, RNG)


# --------------------------------------------------------------- generator
def test_generator_validation():
    sim = Simulator(seed=1)
    net = ElectricalNetwork(sim, NocConfig())
    with pytest.raises(ValueError, match="unknown pattern"):
        SyntheticTrafficGenerator(sim, net, "spiral", 0.1)
    with pytest.raises(ValueError, match="injection_rate"):
        SyntheticTrafficGenerator(sim, net, "uniform", 0.0)
    with pytest.raises(ValueError, match="injection_rate"):
        SyntheticTrafficGenerator(sim, net, "uniform", 1.5)


def test_low_load_delivers_everything():
    res = run_synthetic(
        lambda sim: ElectricalNetwork(sim, NocConfig()),
        "uniform", 0.05, seed=2, warmup=200, measure=1500)
    assert not res.saturated
    assert res.delivered_messages >= 0.99 * res.offered_messages
    assert res.avg_latency > 0


def test_throughput_tracks_offered_load_below_saturation():
    lo = run_synthetic(lambda sim: ElectricalNetwork(sim, NocConfig()),
                       "uniform", 0.02, seed=2, warmup=200, measure=2000)
    hi = run_synthetic(lambda sim: ElectricalNetwork(sim, NocConfig()),
                       "uniform", 0.08, seed=2, warmup=200, measure=2000)
    assert hi.throughput_flits_cycle > 2.5 * lo.throughput_flits_cycle


def test_latency_rises_with_load():
    lo = run_synthetic(lambda sim: ElectricalNetwork(sim, NocConfig()),
                       "uniform", 0.02, seed=2, warmup=200, measure=2000)
    hi = run_synthetic(lambda sim: ElectricalNetwork(sim, NocConfig()),
                       "uniform", 0.25, seed=2, warmup=200, measure=2000)
    assert hi.avg_latency > lo.avg_latency


def test_saturation_detected_at_extreme_load():
    res = run_synthetic(lambda sim: ElectricalNetwork(sim, NocConfig()),
                        "transpose", 1.0, seed=2, warmup=200, measure=1500)
    assert res.saturated


def test_generator_on_optical_crossbar():
    res = run_synthetic(lambda sim: build_optical_network(sim, OnocConfig()),
                        "uniform", 0.1, seed=3, warmup=200, measure=1500)
    assert not res.saturated
    assert res.avg_latency > 0


def test_p99_at_least_mean():
    res = run_synthetic(lambda sim: ElectricalNetwork(sim, NocConfig()),
                        "uniform", 0.1, seed=4, warmup=200, measure=1500)
    assert res.p99_latency >= res.avg_latency


def test_generator_deterministic():
    a = run_synthetic(lambda sim: ElectricalNetwork(sim, NocConfig()),
                      "uniform", 0.05, seed=9, warmup=100, measure=800)
    b = run_synthetic(lambda sim: ElectricalNetwork(sim, NocConfig()),
                      "uniform", 0.05, seed=9, warmup=100, measure=800)
    assert a.avg_latency == b.avg_latency
    assert a.offered_messages == b.offered_messages
