"""Dedicated tests for every invariant in repro.validate.invariants.

Each test constructs a minimal artifact violating exactly one invariant and
asserts the checker flags it by name (and nothing else on the healthy
variant).  Frozen ``TraceRecord`` validation forbids building some corrupt
shapes directly, so those tests smuggle the corruption in with
``object.__setattr__`` — exactly what a buggy capture/replay layer or a
hand-edited JSON artifact would produce.
"""

from __future__ import annotations

import pytest

from repro.core.replay import ReplayResult
from repro.core.trace import EndMarker, Trace, TraceRecord
from repro.validate import invariants as inv


def _rec(msg_id, t_inject, t_deliver, cause_id=-1, gap=None, src=0, dst=1,
         kind="req_read", occ=None, bound_id=-1, bound_gap=0):
    if gap is None:
        gap = t_inject if cause_id == -1 else 0
    occ = msg_id if occ is None else occ
    return TraceRecord(
        msg_id=msg_id, key=(src, dst, kind, 0, occ), src=src, dst=dst,
        size_bytes=8, kind=kind, t_inject=t_inject, t_deliver=t_deliver,
        cause_id=cause_id, gap=gap, bound_id=bound_id, bound_gap=bound_gap)


def _chain_trace():
    """Healthy 3-record chain 0 -> 1 -> 2 with an end marker."""
    r0 = _rec(0, 0, 10)
    r1 = _rec(1, 15, 30, cause_id=0, gap=5)
    r2 = _rec(2, 30, 50, cause_id=1, gap=0)
    marker = EndMarker(0, 55, 2, 5)
    return Trace(records=[r0, r1, r2], end_markers=[marker], exec_time=55)


def _names(violations):
    return {v.invariant for v in violations}


def _result_for(trace, mode="self_correcting"):
    """A ReplayResult consistent with replaying ``trace`` at capture times."""
    deliveries = {r.msg_id: r.t_deliver for r in trace.records}
    injections = {r.msg_id: r.t_inject for r in trace.records}
    return ReplayResult(
        mode=mode,
        exec_time_estimate=trace.exec_time,
        latencies_by_key={r.key: r.latency for r in trace.records},
        deliveries=deliveries,
        injections=injections,
        messages_replayed=len(trace.records),
        messages_unreplayed=0,
        wall_clock_s=0.0,
        sim_events=0,
    )


def test_healthy_trace_and_replay_have_no_violations():
    trace = _chain_trace()
    assert inv.check_trace(trace) == []
    assert inv.check_replay(trace, _result_for(trace)) == []


# ------------------------------------------------------- trace invariants

def test_trace_unique_ids_flags_duplicate_msg_id_and_key():
    trace = _chain_trace()
    dup = _rec(0, 0, 10)  # same msg_id and same semantic key as record 0
    trace.records.append(dup)
    names = _names(inv.check_trace(trace))
    assert inv.TRACE_UNIQUE_IDS in names


def test_trace_referential_integrity_flags_dangling_cause():
    trace = _chain_trace()
    object.__setattr__(trace.records[1], "cause_id", 99)
    names = _names(inv.check_trace(trace))
    assert inv.TRACE_REFERENTIAL in names


def test_trace_causality_flags_gap_mismatch():
    trace = _chain_trace()
    object.__setattr__(trace.records[1], "gap", 3)  # 10 + 3 != 15
    names = _names(inv.check_trace(trace))
    assert inv.TRACE_CAUSALITY in names


def test_trace_causality_flags_negative_gap():
    trace = _chain_trace()
    object.__setattr__(trace.records[1], "gap", -5)
    object.__setattr__(trace.records[1], "t_inject", 5)
    object.__setattr__(trace.records[1], "t_deliver", 20)
    violations = inv.check_trace(trace)
    assert any(v.invariant == inv.TRACE_CAUSALITY and "negative" in v.message
               for v in violations)


def test_trace_acyclicity_flags_dependency_cycle():
    r0 = _rec(0, 5, 5, cause_id=1, gap=0, occ=0)
    r1 = _rec(1, 5, 5, cause_id=0, gap=0, occ=1)
    trace = Trace(records=[r0, r1], end_markers=[], exec_time=0)
    violations = inv.check_trace(trace)
    flagged = {v.msg_id for v in violations
               if v.invariant == inv.TRACE_ACYCLICITY}
    assert flagged == {0, 1}


def test_trace_latency_nonnegative_flags_time_travel():
    trace = _chain_trace()
    object.__setattr__(trace.records[2], "t_deliver", 20)  # before inject 30
    names = _names(inv.check_trace(trace))
    assert inv.TRACE_LATENCY in names


def test_trace_end_marker_consistency_flags_stale_exec_time():
    trace = _chain_trace()
    trace.exec_time = 999  # no longer the latest marker finish
    names = _names(inv.check_trace(trace))
    assert inv.TRACE_END_MARKERS in names


def test_trace_end_marker_consistency_flags_dangling_cause():
    trace = _chain_trace()
    trace.end_markers[0] = EndMarker(0, 55, 42, 5)
    names = _names(inv.check_trace(trace))
    assert inv.TRACE_END_MARKERS in names


def test_trace_channel_monotonicity_flags_disjoint_reorder():
    # Same channel; r2's flight starts after r0 delivers, yet r2 "delivers"
    # back at t=12 < r0's delivery — a time-travelling artifact that per-
    # record latency checks alone cannot catch once we corrupt in pairs.
    r0 = _rec(0, 0, 20)
    r1 = _rec(1, 5, 40, occ=1)          # overlapping: free to reorder
    r2 = _rec(2, 25, 30, occ=2)
    trace = Trace(records=[r0, r1, r2], end_markers=[], exec_time=0)
    assert inv.check_trace(trace) == []  # healthy: no reorder among disjoint
    object.__setattr__(trace.records[2], "t_deliver", 12)
    object.__setattr__(trace.records[2], "t_inject", 25)
    violations = inv.check_trace(trace)
    assert inv.TRACE_CHANNEL_ORDER in _names(violations)


def test_violation_lists_are_capped():
    records = [_rec(i, 5, 5, cause_id=(i + 1) % 60, gap=0, occ=i)
               for i in range(60)]
    trace = Trace(records=records, end_markers=[], exec_time=0)
    violations = [v for v in inv.check_trace(trace)
                  if v.invariant == inv.TRACE_ACYCLICITY]
    assert len(violations) == inv._VIOLATION_CAP + 1
    assert "suppressed" in violations[-1].message


# ------------------------------------------------------ replay invariants

def test_replay_conservation_flags_count_mismatch():
    trace = _chain_trace()
    result = _result_for(trace)
    result.messages_replayed = 2  # claims 2 but injected 3
    names = _names(inv.check_replay(trace, result))
    assert inv.REPLAY_CONSERVATION in names


def test_replay_conservation_flags_delivery_without_injection():
    trace = _chain_trace()
    result = _result_for(trace)
    del result.injections[2]
    result.messages_replayed = 2
    result.messages_unreplayed = 1
    result.stalled_count = 1
    names = _names(inv.check_replay(trace, result))
    assert inv.REPLAY_CONSERVATION in names


def test_replay_causality_flags_wrong_self_correcting_injection():
    trace = _chain_trace()
    result = _result_for(trace)
    # Record 1's cause delivered at 10 (gap 5) => injection must be 15 (or
    # the captured fallback, also 15 here); 13 is neither.
    result.injections[1] = 13
    names = _names(inv.check_replay(trace, result))
    assert inv.REPLAY_CAUSALITY in names


def test_replay_causality_naive_mode_pins_captured_timestamps():
    trace = _chain_trace()
    result = _result_for(trace, mode="naive")
    result.injections[1] = 13  # naive must inject at the captured time 15
    names = _names(inv.check_replay(trace, result))
    assert inv.REPLAY_CAUSALITY in names


def test_replay_stall_accounting_flags_count_drift():
    trace = _chain_trace()
    result = _result_for(trace)
    result.stalled_count = 2  # but messages_unreplayed == 0
    names = _names(inv.check_replay(trace, result))
    assert inv.REPLAY_STALLS in names


def test_replay_stall_accounting_flags_stall_on_delivered_trigger():
    trace = _chain_trace()
    result = _result_for(trace)
    del result.injections[2]
    del result.deliveries[2]
    del result.latencies_by_key[trace.records[2].key]
    result.messages_replayed = 2
    result.messages_unreplayed = 1
    result.stalled_count = 1
    result.stalled_msg_ids = [2]
    result.stalled_on = {2: [1]}  # but msg 1 *was* delivered
    violations = inv.check_replay(trace, result)
    assert any(v.invariant == inv.REPLAY_STALLS and "delivered" in v.message
               for v in violations)


def test_replay_latency_map_consistency_flags_bad_entry():
    trace = _chain_trace()
    result = _result_for(trace)
    result.latencies_by_key[trace.records[0].key] = 7  # real latency is 10
    names = _names(inv.check_replay(trace, result))
    assert inv.REPLAY_LATENCY_MAP in names


def test_replay_exec_estimate_consistency_flags_wrong_estimate():
    trace = _chain_trace()
    result = _result_for(trace)
    result.exec_time_estimate = 1234
    names = _names(inv.check_replay(trace, result))
    assert inv.REPLAY_EXEC_ESTIMATE in names


def test_replay_channel_monotonicity_flags_replayed_reorder():
    r0 = _rec(0, 0, 20)
    r1 = _rec(1, 25, 30, occ=1)
    trace = Trace(records=[r0, r1], end_markers=[], exec_time=0)
    result = _result_for(trace, mode="naive")
    result.deliveries[1] = 15  # delivered before the disjoint predecessor
    result.latencies_by_key[r1.key] = 15 - 25
    result.exec_time_estimate = 20
    names = _names(inv.check_replay(trace, result))
    assert inv.REPLAY_CHANNEL_ORDER in names


# --------------------------------------------------- metamorphic helpers

def test_scale_trace_gaps_scales_roots_and_edges():
    trace = _chain_trace()
    scaled = inv.scale_trace_gaps(trace, 3)
    by_id = {r.msg_id: r for r in scaled.records}
    assert by_id[0].t_inject == 0 and by_id[0].t_deliver == 10
    assert by_id[1].t_inject == 10 + 15  # deliver(0) + 3*5
    assert by_id[1].latency == trace.records[1].latency
    assert scaled.exec_time == by_id[2].t_deliver + 15
    scaled.validate()  # still a structurally valid trace


def test_scale_trace_gaps_identity_at_one():
    trace = _chain_trace()
    scaled = inv.scale_trace_gaps(trace, 1)
    assert scaled.to_json() == Trace(
        records=trace.records, end_markers=trace.end_markers,
        exec_time=trace.exec_time, meta={"gap_scale": 1}).to_json()


def test_scale_trace_gaps_rejects_negative_factor():
    with pytest.raises(ValueError, match="scale factor"):
        inv.scale_trace_gaps(_chain_trace(), -1)


def test_all_invariants_catalogue_is_complete():
    # Guard: every name asserted above is in the published catalogue.
    assert len(inv.ALL_INVARIANTS) >= 8
    assert len(set(inv.ALL_INVARIANTS)) == len(inv.ALL_INVARIANTS)
