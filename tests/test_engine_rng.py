"""Unit tests for deterministic hierarchical RNG streams."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import RngFactory


def test_same_key_same_stream():
    a = RngFactory(seed=1).stream("traffic").random(8)
    b = RngFactory(seed=1).stream("traffic").random(8)
    assert (a == b).all()


def test_different_keys_independent():
    f = RngFactory(seed=1)
    a = f.stream("a").random(8)
    b = f.stream("b").random(8)
    assert not (a == b).all()


def test_different_seeds_differ():
    a = RngFactory(seed=1).stream("x").random(8)
    b = RngFactory(seed=2).stream("x").random(8)
    assert not (a == b).all()


def test_stream_is_cached_and_continues():
    f = RngFactory(seed=3)
    first = f.stream("k").random(4)
    second = f.stream("k").random(4)
    # A fresh factory drawing 8 values matches the concatenation: the cached
    # stream continued rather than restarting.
    ref = RngFactory(seed=3).stream("k").random(8)
    assert (np.concatenate([first, second]) == ref).all()


def test_fresh_restarts_stream():
    f = RngFactory(seed=3)
    first = f.stream("k").random(4)
    restarted = f.fresh("k").random(4)
    assert (first == restarted).all()


def test_adding_streams_does_not_perturb_existing():
    f1 = RngFactory(seed=9)
    a1 = f1.stream("alpha").random(4)

    f2 = RngFactory(seed=9)
    f2.stream("beta").random(100)      # interleaved other-stream use
    a2 = f2.stream("alpha").random(4)
    assert (a1 == a2).all()


def test_negative_seed_rejected():
    with pytest.raises(ValueError, match="non-negative"):
        RngFactory(seed=-1)
