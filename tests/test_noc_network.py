"""Electrical-network integration tests: delivery, latency, invariants."""

from __future__ import annotations

import pytest

from repro.config import NocConfig
from repro.engine import Simulator
from repro.net import Message
from repro.noc import ElectricalNetwork


def run_messages(cfg: NocConfig, sends, seed=1, keep=False):
    """sends: list of (time, src, dst, size). Returns (net, delivered list)."""
    sim = Simulator(seed=seed)
    net = ElectricalNetwork(sim, cfg, keep_per_message_latency=keep)
    done: list[Message] = []
    net.set_delivery_handler(done.append)
    for t, s, d, size in sends:
        sim.schedule(t, net.send, (Message(s, d, size),))
    sim.run()
    return net, done


def test_single_message_minimum_latency():
    cfg = NocConfig()
    # 1 hop: NI->router link (1) + router pipeline (3) + SA/ST + link (1)
    # + downstream pipeline + ejection link; exact value is a contract.
    net, done = run_messages(cfg, [(0, 0, 1, 16)])
    assert len(done) == 1
    lat = done[0].latency
    # Analytical lower bound: 2 routers * (router_latency + 1 ST cycle... )
    hops = 1
    lower = cfg.link_latency + (hops + 1) * cfg.router_latency + hops * cfg.link_latency + cfg.link_latency
    assert lat >= lower
    assert lat < lower + 10  # and no mysterious stalls for a lone packet


def test_latency_scales_with_distance():
    cfg = NocConfig()
    _, d1 = run_messages(cfg, [(0, 0, 1, 16)])
    _, d2 = run_messages(cfg, [(0, 0, 15, 16)])
    assert d2[0].latency > d1[0].latency


def test_latency_scales_with_size():
    cfg = NocConfig()
    _, small = run_messages(cfg, [(0, 0, 5, 16)])
    _, big = run_messages(cfg, [(0, 0, 5, 160)])
    # 10 flits vs 1 flit: ~9 extra serialization cycles
    assert big[0].latency >= small[0].latency + 9


def test_all_pairs_delivery_mesh():
    cfg = NocConfig()
    sends = [(0, s, d, 32) for s in range(16) for d in range(16) if s != d]
    net, done = run_messages(cfg, sends)
    assert len(done) == 240
    assert net.quiescent()


@pytest.mark.parametrize("cfg", [
    NocConfig(topology="torus"),
    NocConfig(topology="ring", width=8, height=1),
    NocConfig(routing="yx"),
    NocConfig(routing="adaptive"),
    NocConfig(num_vcs=4, vc_depth=2),
    NocConfig(width=2, height=2),
    NocConfig(width=8, height=2),
], ids=["torus", "ring", "yx", "adaptive", "4vc", "2x2", "8x2"])
def test_all_pairs_delivery_variants(cfg):
    n = cfg.num_nodes
    sends = [(0, s, d, 64) for s in range(n) for d in range(n) if s != d]
    net, done = run_messages(cfg, sends)
    assert len(done) == len(sends)
    assert net.quiescent()


def test_heavy_random_load_drains():
    cfg = NocConfig()
    import numpy as np

    rng = np.random.default_rng(3)
    sends = []
    for i in range(600):
        s = int(rng.integers(0, 16))
        d = int(rng.integers(0, 16))
        if s != d:
            sends.append((int(rng.integers(0, 200)), s, d,
                          int(rng.integers(8, 128))))
    net, done = run_messages(cfg, sends)
    assert len(done) == len(sends)
    assert net.stats.in_flight() == 0


def test_flit_accounting():
    cfg = NocConfig(flit_bytes=16)
    net, done = run_messages(cfg, [(0, 0, 5, 72), (0, 3, 9, 8)])
    assert net.stats.flits_delivered == 5 + 1
    assert net.stats.bytes_delivered == 80


def test_hop_count_stats():
    cfg = NocConfig()
    net, _ = run_messages(cfg, [(0, 0, 15, 16)])
    assert net.stats.hop_count.mean == 6  # manhattan distance in 4x4


def test_self_send_rejected():
    sim = Simulator()
    net = ElectricalNetwork(sim, NocConfig())
    with pytest.raises(ValueError, match="self-send"):
        net.send(Message(3, 3, 8))


def test_out_of_range_rejected():
    sim = Simulator()
    net = ElectricalNetwork(sim, NocConfig())
    with pytest.raises(ValueError, match="out of range"):
        net.send(Message(0, 99, 8))


def test_determinism_same_seed_identical_latencies():
    cfg = NocConfig()
    sends = [(i % 40, i % 16, (i * 7 + 1) % 16, 48) for i in range(100)
             if i % 16 != (i * 7 + 1) % 16]
    _, d1 = run_messages(cfg, sends, seed=5, keep=True)
    _, d2 = run_messages(cfg, sends, seed=5, keep=True)
    # Message ids are globally monotone, so compare delivery order and
    # per-message timing instead of raw ids.
    sig1 = [(m.src, m.dst, m.inject_time, m.deliver_time) for m in d1]
    sig2 = [(m.src, m.dst, m.inject_time, m.deliver_time) for m in d2]
    assert sig1 == sig2


def test_per_message_latency_recording():
    cfg = NocConfig()
    net, done = run_messages(cfg, [(0, 0, 5, 16)], keep=True)
    assert net.stats.latency.by_message == {done[0].id: done[0].latency}


def test_wormhole_ordering_same_flow():
    """Two packets of one src->dst flow deliver in injection order."""
    cfg = NocConfig()
    sim = Simulator(seed=1)
    net = ElectricalNetwork(sim, cfg)
    order = []
    for k in range(6):
        m = Message(0, 15, 64, payload=k, on_delivery=lambda m: order.append(m.payload))
        sim.schedule(k, net.send, (m,))
    sim.run()
    assert order == sorted(order)


def test_queueing_delay_recorded_under_burst():
    cfg = NocConfig()
    sends = [(0, 0, 15, 160) for _ in range(8)]   # 8 big packets same flow
    net, done = run_messages(cfg, sends)
    assert len(done) == 8
    assert net.stats.queueing_delay.max > 0  # later packets waited at the NI


def test_backpressure_bounds_buffer_occupancy():
    """Credit flow control must never overflow any input VC."""
    cfg = NocConfig(vc_depth=2, num_vcs=2)
    sim = Simulator(seed=2)
    net = ElectricalNetwork(sim, cfg)
    overflow_seen = []

    def check():
        for r in net.routers:
            for pv in r.input_vcs:
                for ivc in pv:
                    if len(ivc.flits) > cfg.vc_depth:
                        overflow_seen.append((r.node, ivc.port, ivc.vc))

    for i in range(200):
        s, d = i % 16, (i * 5 + 2) % 16
        if s != d:
            sim.schedule(i // 4, net.send, (Message(s, d, 96),))
    for t in range(0, 400, 7):
        sim.schedule(t, check)
    sim.run()
    assert not overflow_seen
    assert net.quiescent()
