"""Routing-function tests: minimality, dimension order, datelines."""

from __future__ import annotations

import pytest

from repro.config import NocConfig
from repro.noc.routing import crosses_dateline, productive_ports, route_port
from repro.noc.topology import CCW, CW, EAST, LOCAL, NORTH, SOUTH, Topology, WEST


def mesh(w=4, h=4):
    return Topology(NocConfig(width=w, height=h))


def torus():
    return Topology(NocConfig(topology="torus"))


def ring(n=8):
    return Topology(NocConfig(topology="ring", width=n, height=1))


def walk(topo, algorithm, src, dst, max_steps=64):
    """Follow route_port until ejection; returns hop count."""
    cur, hops = src, 0
    while True:
        port = route_port(topo, algorithm, cur, dst)
        if port == LOCAL:
            return hops
        nb = topo.neighbor(cur, port)
        assert nb is not None, f"routed off-chip at {cur} port {port}"
        cur = nb[0]
        hops += 1
        assert hops <= max_steps, "routing loop"


@pytest.mark.parametrize("algorithm", ["xy", "yx"])
def test_mesh_routes_are_minimal(algorithm):
    t = mesh()
    for s in range(16):
        for d in range(16):
            assert walk(t, algorithm, s, d) == t.min_hops(s, d)


def test_xy_goes_x_first():
    t = mesh()
    # from (0,0) to (2,2): first hop must be EAST under XY, NORTH under YX
    assert route_port(t, "xy", 0, t.node_at(2, 2)) == EAST
    assert route_port(t, "yx", 0, t.node_at(2, 2)) == NORTH


def test_route_to_self_is_local():
    t = mesh()
    assert route_port(t, "xy", 5, 5) == LOCAL


def test_torus_routes_are_minimal():
    t = torus()
    for s in range(16):
        for d in range(16):
            assert walk(t, "xy", s, d) == t.min_hops(s, d)


def test_ring_routes_are_minimal():
    t = ring(9)
    for s in range(9):
        for d in range(9):
            assert walk(t, "xy", s, d) == t.min_hops(s, d)


def test_productive_ports_mesh():
    t = mesh()
    ports = productive_ports(t, 0, t.node_at(2, 2))
    assert set(ports) == {EAST, NORTH}
    assert productive_ports(t, 5, 5) == []
    # single-dimension moves offer one port
    assert productive_ports(t, 0, 3) == [EAST]


def test_productive_ports_ring_equidistant():
    t = ring(8)
    assert productive_ports(t, 0, 4) == [CW, CCW]
    assert productive_ports(t, 0, 3) == [CW]
    assert productive_ports(t, 0, 5) == [CCW]


def test_productive_ports_subset_of_live_ports():
    t = mesh(3, 3)
    for s in range(9):
        for d in range(9):
            for p in productive_ports(t, s, d):
                assert t.neighbor(s, p) is not None


def test_crosses_dateline_mesh_never():
    t = mesh()
    for node in range(16):
        for port in t.output_ports(node):
            assert not crosses_dateline(t, node, port)


def test_crosses_dateline_torus_edges_only():
    t = torus()
    assert crosses_dateline(t, 3, EAST)       # x == width-1 wrapping east
    assert crosses_dateline(t, 0, WEST)
    assert crosses_dateline(t, 12, NORTH)     # y == height-1
    assert crosses_dateline(t, 0, SOUTH)
    assert not crosses_dateline(t, 1, EAST)
    assert not crosses_dateline(t, 5, NORTH)


def test_crosses_dateline_ring():
    t = ring(8)
    assert crosses_dateline(t, 7, CW)
    assert crosses_dateline(t, 0, CCW)
    assert not crosses_dateline(t, 3, CW)
