"""Topology wiring tests: neighbours, symmetry, distances."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.config import NocConfig
from repro.noc.topology import CCW, CW, EAST, NORTH, SOUTH, Topology, WEST


def mesh(w=4, h=4):
    return Topology(NocConfig(width=w, height=h))


def torus(w=4, h=4):
    return Topology(NocConfig(topology="torus", width=w, height=h))


def ring(n=8):
    return Topology(NocConfig(topology="ring", width=n, height=1))


def test_mesh_edges_have_no_wrap():
    t = mesh()
    assert t.neighbor(0, WEST) is None
    assert t.neighbor(0, SOUTH) is None
    assert t.neighbor(3, EAST) is None
    assert t.neighbor(12, NORTH) is None


def test_mesh_interior_neighbors():
    t = mesh()
    node = t.node_at(1, 1)  # 5
    assert t.neighbor(node, EAST) == (t.node_at(2, 1), WEST)
    assert t.neighbor(node, NORTH) == (t.node_at(1, 2), SOUTH)
    assert t.neighbor(node, WEST) == (t.node_at(0, 1), EAST)
    assert t.neighbor(node, SOUTH) == (t.node_at(1, 0), NORTH)


def test_torus_wraps():
    t = torus()
    assert t.neighbor(0, WEST) == (3, EAST)
    assert t.neighbor(0, SOUTH) == (12, NORTH)
    assert t.neighbor(15, EAST) == (12, WEST)


def test_ring_wiring():
    t = ring(5)
    assert t.neighbor(4, CW) == (0, CCW)
    assert t.neighbor(0, CCW) == (4, CW)
    assert t.num_ports == 3


def test_neighbor_symmetry_all_topologies():
    for t in (mesh(3, 5), torus(4, 4), ring(6)):
        for node in range(t.num_nodes):
            for port in t.output_ports(node):
                nbr, in_port = t.neighbor(node, port)
                back = t.neighbor(nbr, in_port)
                assert back == (node, port), (t.kind, node, port)


def test_coord_roundtrip():
    t = mesh(5, 3)
    for node in range(t.num_nodes):
        c = t.coord(node)
        assert t.node_at(c.x, c.y) == node


def test_min_hops_mesh_is_manhattan():
    t = mesh()
    assert t.min_hops(0, 15) == 6
    assert t.min_hops(0, 0) == 0
    assert t.min_hops(0, 3) == 3
    assert t.min_hops(5, 10) == t.min_hops(10, 5)


def test_min_hops_torus_uses_wrap():
    t = torus()
    assert t.min_hops(0, 3) == 1       # wrap west
    assert t.min_hops(0, 12) == 1      # wrap south
    assert t.min_hops(0, 15) == 2


def test_min_hops_ring():
    t = ring(8)
    assert t.min_hops(0, 1) == 1
    assert t.min_hops(0, 7) == 1
    assert t.min_hops(0, 4) == 4


def test_min_hops_matches_networkx():
    for t in (mesh(4, 4), torus(4, 4), ring(8)):
        g = t.to_networkx()
        sp = dict(nx.all_pairs_shortest_path_length(g))
        for s in range(t.num_nodes):
            for d in range(t.num_nodes):
                assert t.min_hops(s, d) == sp[s][d], (t.kind, s, d)


def test_networkx_graph_degree():
    g = mesh().to_networkx()
    # 4x4 mesh: corners 2, edges 3, interior 4 (out-degree)
    degs = sorted(d for _, d in g.out_degree())
    assert degs.count(2) == 4 and degs.count(3) == 8 and degs.count(4) == 4


def test_torus_1wide_dimension_skips_self_links():
    t = Topology(NocConfig(topology="torus", width=1, height=4))
    assert t.neighbor(0, EAST) is None
    assert t.neighbor(0, WEST) is None
    assert t.neighbor(0, NORTH) is not None


def test_node_range_checks():
    t = mesh()
    with pytest.raises(ValueError):
        t.coord(16)
    with pytest.raises(ValueError):
        t.neighbor(0, 9)
    with pytest.raises(ValueError):
        t.node_at(4, 0)
