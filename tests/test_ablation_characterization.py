"""Characterization: ablation degrades gracefully under neighbor re-derivation.

Two-sided pin of the degraded-gap policy behaviour on the reference mismatch
pair (fft, 16 cores, seed 16, awgr-captured trace replayed on crossbar at
scale 0.1; naive error ~132%, unablated self-correcting error ~3.6%):

* Under the historical ``captured`` policy, ``keep_dep_fraction=0.9``
  collapses to naive-replay error (>120%): ablated records replay their
  captured absolute timestamps, which re-anchor the schedule to the capture
  network's timing and forfeit self-correction wholesale.  This was the
  ROADMAP "ablation blow-up" open item, pinned here so the cliff cannot
  silently return as the default.
* Under the default ``neighbor_gap`` policy the same ablation stays under
  25% error (measured ~5.4%): each ablated record re-derives its injection
  from its same-node predecessor's *replayed* time plus the captured
  inter-send delta, so it rides the corrected schedule instead of dragging
  the schedule back to capture time.

Both directions are pinned so a regression is caught from either side: the
cliff reappearing under ``neighbor_gap``, or the ``captured`` baseline
silently changing (which would invalidate the measured comparison).
"""

from __future__ import annotations

import pytest

from repro.validate.scenario import Scenario, run_scenario


@pytest.fixture(scope="module")
def ablated_neighbor():
    """keep=0.9 under the default neighbor_gap policy."""
    return run_scenario(Scenario("fft", 16, 16, 0.1, "awgr", "crossbar",
                                 keep_dep_fraction=0.9))


@pytest.fixture(scope="module")
def ablated_captured():
    """keep=0.9 under the historical captured-timestamp policy."""
    return run_scenario(Scenario("fft", 16, 16, 0.1, "awgr", "crossbar",
                                 keep_dep_fraction=0.9,
                                 gap_policy="captured"))


@pytest.fixture(scope="module")
def unablated():
    return run_scenario(Scenario("fft", 16, 16, 0.1, "awgr", "crossbar"))


def test_neighbor_policy_degrades_gracefully(ablated_neighbor):
    """The acceptance pin: keep=0.9 error drops from >120% (captured) to
    <25% under neighbor re-derivation — measured ~5.4%."""
    assert ablated_neighbor.sc_exec_error_pct < 25.0
    # The degradation machinery actually engaged: ~10% of the 1174 dependent
    # records were re-derived from anchors, none stalled.
    assert ablated_neighbor.sc_rederived > 50
    assert ablated_neighbor.sc_unreplayed == 0


def test_captured_policy_reproduces_the_cliff(ablated_captured):
    """The historical collapse, kept reproducible under the opt-out policy:
    keep=0.9 with captured fallbacks re-anchors to naive-replay error."""
    assert ablated_captured.sc_exec_error_pct > 120.0
    assert ablated_captured.naive_exec_error_pct > 120.0
    # Degrades all the way to naive: the two errors agree to within a few
    # points (both embed the capture network's timing).
    assert abs(ablated_captured.sc_exec_error_pct
               - ablated_captured.naive_exec_error_pct) < 5.0
    assert ablated_captured.sc_rederived == 0


def test_unablated_baseline_is_tight(unablated):
    """Same scenario without ablation: the self-correcting model is an
    order of magnitude better than naive, confirming the cliff was the
    ablation's doing, not the scenario's."""
    assert unablated.sc_exec_error_pct < 10.0
    assert unablated.naive_exec_error_pct > 100.0
    assert unablated.sc_rederived == 0


def test_ablated_scenarios_still_structurally_sound(ablated_neighbor,
                                                    ablated_captured):
    """Degradation is a *timing* effect only — no invariant violations and
    nothing unreplayed under either policy (the envelope holds ablated runs
    to the naive error bound by design)."""
    for outcome in (ablated_neighbor, ablated_captured):
        assert outcome.violations == []
        assert outcome.sc_unreplayed == 0
