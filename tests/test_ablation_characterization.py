"""Characterization: dependency ablation collapses replay to naive error.

Executable anchor for the ROADMAP open item on ablation blow-up.  Measured
on fft/16-core awgr->crossbar (seed 16): ``keep_dep_fraction=0.9`` yields
~132% self-correcting exec error at scale 0.1 — within a fraction of a
percentage point of the *naive* replay error — while the unablated model
sits at ~3.6%.  The same collapse holds at scales 0.25/0.5/1.0 (123-137%),
so the blow-up is ablation-driven, not scale-driven: ablated records fall
back to captured timestamps, which re-anchor the schedule to the capture
network's absolute timing and forfeit self-correction wholesale.

These tests pin the cheap scale-0.1 point so a replayer change that either
fixes the collapse (ablation becoming graceful) or worsens the baseline
shows up as a diff.
"""

from __future__ import annotations

import pytest

from repro.validate.scenario import Scenario, run_scenario


@pytest.fixture(scope="module")
def ablated():
    return run_scenario(Scenario("fft", 16, 16, 0.1, "awgr", "crossbar",
                                 keep_dep_fraction=0.9))


@pytest.fixture(scope="module")
def unablated():
    return run_scenario(Scenario("fft", 16, 16, 0.1, "awgr", "crossbar"))


def test_ablation_blows_up_exec_error(ablated):
    """keep_dep_fraction=0.9 at scale=0.1 -> >130% exec error."""
    assert ablated.sc_exec_error_pct > 130.0


def test_ablated_error_is_naive_like(ablated):
    """The ablated model degrades all the way to naive replay: the two
    errors agree to within a few points (both embed capture timing)."""
    assert ablated.naive_exec_error_pct > 130.0
    assert abs(ablated.sc_exec_error_pct
               - ablated.naive_exec_error_pct) < 5.0


def test_unablated_baseline_is_tight(unablated):
    """Same scenario without ablation: the self-correcting model is an
    order of magnitude better than naive, confirming the blow-up is the
    ablation's doing, not the scenario's."""
    assert unablated.sc_exec_error_pct < 10.0
    assert unablated.naive_exec_error_pct > 100.0


def test_ablated_scenario_still_structurally_sound(ablated):
    """The blow-up is a *timing* regression only — no invariant violations
    and nothing unreplayed (the envelope holds ablated runs to the naive
    error bound by design)."""
    assert ablated.violations == []
    assert ablated.sc_unreplayed == 0
