"""Replayer tests: the heart of the reproduction.

The decisive properties:

* replaying a trace **on its capture network** reproduces the captured
  execution time almost exactly (self-consistency);
* on a *different* network the self-correcting replay tracks the
  execution-driven reference closely while the naive replay does not;
* dependency ablation degrades gracefully toward naive behaviour.
"""

from __future__ import annotations

import pytest

from repro.config import (
    CacheConfig,
    ExperimentConfig,
    NocConfig,
    OnocConfig,
    SystemConfig,
    TraceConfig,
)
from repro.core import (
    NaiveReplayer,
    SelfCorrectingReplayer,
    compare_to_reference,
    replay_trace,
)
from repro.core.replay import FixedScheduleReplayer
from repro.harness import electrical_factory, optical_factory, run_execution_driven


def small_exp(seed=5):
    return ExperimentConfig(
        system=SystemConfig(
            num_cores=4,
            l1=CacheConfig(size_bytes=1024, assoc=2, line_bytes=64, hit_latency=1),
            l2_slice=CacheConfig(size_bytes=4096, assoc=4, line_bytes=64, hit_latency=4),
            mem_latency=30, num_mem_ctrls=2,
        ),
        noc=NocConfig(width=2, height=2),
        onoc=OnocConfig(num_nodes=4, num_wavelengths=16),
        seed=seed,
    )


@pytest.fixture(scope="module")
def setting():
    exp = small_exp()
    res_e, trace, _ = run_execution_driven(exp, "randshare", "electrical")
    res_o, ref_trace, _ = run_execution_driven(exp, "randshare", "optical")
    return exp, res_e, trace, res_o, ref_trace


def test_all_messages_replayed_naive(setting):
    exp, _, trace, _, _ = setting
    r = replay_trace(trace, optical_factory(exp.onoc, exp.seed),
                     TraceConfig(mode="naive"))
    assert r.messages_replayed == len(trace)
    assert r.messages_unreplayed == 0
    assert len(r.deliveries) == len(trace)


def test_all_messages_replayed_self_correcting(setting):
    exp, _, trace, _, _ = setting
    r = replay_trace(trace, optical_factory(exp.onoc, exp.seed))
    assert r.messages_replayed == len(trace)
    assert r.messages_unreplayed == 0


def test_naive_replay_preserves_injection_times(setting):
    exp, _, trace, _, _ = setting
    r = replay_trace(trace, optical_factory(exp.onoc, exp.seed),
                     TraceConfig(mode="naive"))
    for rec in trace.records:
        assert r.injections[rec.msg_id] == rec.t_inject


def test_self_correcting_respects_causality(setting):
    exp, _, trace, _, _ = setting
    r = replay_trace(trace, optical_factory(exp.onoc, exp.seed))
    for rec in trace.records:
        if rec.cause_id != -1:
            expected = r.deliveries[rec.cause_id] + rec.gap
            if rec.bound_id != -1:
                expected = max(expected,
                               r.deliveries[rec.bound_id] + rec.bound_gap)
            assert r.injections[rec.msg_id] == expected, (
                f"record {rec.msg_id} not gap-aligned to its trigger edges"
            )


def test_self_consistency_on_capture_network(setting):
    """Replaying on the capture network reproduces the captured timing."""
    exp, res_e, trace, _, _ = setting
    r = replay_trace(trace, electrical_factory(exp.noc, exp.seed))
    err = abs(r.exec_time_estimate - res_e.exec_time_cycles) / res_e.exec_time_cycles
    assert err < 0.03, f"self-consistency error {err:.2%}"


def test_self_correcting_beats_naive_on_target(setting):
    exp, _, trace, res_o, ref_trace = setting
    factory = optical_factory(exp.onoc, exp.seed)
    naive = compare_to_reference(
        replay_trace(trace, factory, TraceConfig(mode="naive")), ref_trace)
    sc = compare_to_reference(replay_trace(trace, factory), ref_trace)
    assert sc.exec_time_error_pct < naive.exec_time_error_pct
    assert sc.exec_time_error_pct < 6.0, "self-correction should be precise"


def test_naive_estimate_biased_toward_capture_time(setting):
    """Naive replay keeps the capture network's timeline, so its estimate
    stays near the electrical execution time instead of the optical one."""
    exp, res_e, trace, res_o, _ = setting
    naive = replay_trace(trace, optical_factory(exp.onoc, exp.seed),
                         TraceConfig(mode="naive"))
    d_capture = abs(naive.exec_time_estimate - res_e.exec_time_cycles)
    d_target = abs(naive.exec_time_estimate - res_o.exec_time_cycles)
    assert d_capture < d_target


def test_dep_ablation_degrades_gracefully(setting):
    exp, _, trace, _, ref_trace = setting
    factory = optical_factory(exp.onoc, exp.seed)
    errs = []
    for frac in (1.0, 0.5, 0.0):
        r = replay_trace(trace, factory,
                         TraceConfig(mode="self_correcting",
                                     keep_dep_fraction=frac))
        errs.append(compare_to_reference(r, ref_trace).exec_time_error_pct)
    # full deps strictly better than none; zero == naive-like
    assert errs[0] < errs[-1]


def test_ablation_zero_fraction_counts_drops(setting):
    exp, _, trace, _, _ = setting
    from repro.engine import Simulator
    from repro.onoc import build_optical_network

    sim = Simulator(seed=1)
    net = build_optical_network(sim, exp.onoc)
    rep = SelfCorrectingReplayer(trace, sim, net, keep_dep_fraction=0.0)
    assert rep.dropped_deps == len(trace) - len(trace.roots())


def test_fixed_schedule_replayer_requires_complete_schedule(setting):
    exp, _, trace, _, _ = setting
    from repro.engine import Simulator
    from repro.onoc import build_optical_network

    sim = Simulator(seed=1)
    net = build_optical_network(sim, exp.onoc)
    with pytest.raises(ValueError, match="schedule missing"):
        FixedScheduleReplayer(trace, sim, net, schedule={})


def test_replay_network_too_small_rejected(setting):
    _, _, trace, _, _ = setting
    from repro.engine import Simulator
    from repro.onoc import build_optical_network

    sim = Simulator(seed=1)
    net = build_optical_network(sim, OnocConfig(num_nodes=2, num_wavelengths=4))
    with pytest.raises(ValueError, match="too small"):
        NaiveReplayer(trace, sim, net)


def test_replay_deterministic(setting):
    exp, _, trace, _, _ = setting
    factory = optical_factory(exp.onoc, exp.seed)
    a = replay_trace(trace, factory)
    b = replay_trace(trace, factory)
    assert a.exec_time_estimate == b.exec_time_estimate
    assert a.deliveries == b.deliveries


def test_replay_result_latencies_match_deliveries(setting):
    exp, _, trace, _, _ = setting
    r = replay_trace(trace, optical_factory(exp.onoc, exp.seed))
    key_of = {rec.msg_id: rec.key for rec in trace.records}
    for mid, t in r.deliveries.items():
        assert r.latencies_by_key[key_of[mid]] == t - r.injections[mid]


# ----------------------------------------------------- stall diagnostics
def _orphan_trace():
    """A trace whose record 2 depends on msg_id 99 that never delivers
    (and record 3 depends on the stalled record 2 — a stall chain).
    Built directly, skipping Trace.validate(), to model a buggy or
    truncated dependency graph reaching the replayer."""
    from repro.core.trace import Trace, TraceRecord

    def rec(msg_id, cause_id, t_inject, gap, bound_id=-1, bound_gap=0):
        return TraceRecord(
            msg_id=msg_id, key=(0, 1, "data", msg_id, 0), src=0, dst=1,
            size_bytes=64, kind="data", t_inject=t_inject,
            t_deliver=t_inject + 10, cause_id=cause_id, gap=gap,
            bound_id=bound_id, bound_gap=bound_gap)

    records = [
        rec(0, -1, 0, 0),
        rec(1, 0, 15, 5),
        rec(2, 99, 30, 5),           # cause 99 does not exist
        rec(3, 2, 45, 5),            # stalls transitively behind 2
    ]
    return Trace(records=records, end_markers=[], exec_time=55, meta={})


def test_stalled_dependents_are_diagnosed(setting):
    """Under the ``captured`` degraded-gap policy a missing trigger still
    stalls its whole dependency chain, with diagnostics naming the culprit."""
    exp, *_ = setting
    trace = _orphan_trace()
    sim, net = optical_factory(exp.onoc, exp.seed)()
    r = SelfCorrectingReplayer(trace, sim, net,
                               degraded_gap_policy="captured").run()
    assert r.messages_replayed == 2
    assert r.messages_unreplayed == 2
    assert r.stalled_count == 2
    assert r.stalled_msg_ids == [2, 3]
    # Record 2 names its missing trigger; record 3 names its stalled cause.
    assert r.stalled_on == {2: [99], 3: [2]}
    # Missing triggers are a data bug, not a cycle: nothing is demoted.
    assert r.demoted_cyclic == 0
    assert r.fault_exposure.policy == "captured"
    assert r.fault_exposure.missing_triggers == 1
    assert r.fault_exposure.rederived == 0


def test_missing_trigger_rederived_under_neighbor_policy(setting):
    """The default ``neighbor_gap`` policy re-derives the orphaned record
    from its same-node predecessor instead of stalling the chain."""
    exp, *_ = setting
    trace = _orphan_trace()
    sim, net = optical_factory(exp.onoc, exp.seed)()
    r = SelfCorrectingReplayer(trace, sim, net).run()
    assert r.messages_replayed == 4
    assert r.messages_unreplayed == 0
    assert r.stalled_count == 0
    assert r.fault_exposure.missing_triggers == 1
    assert r.fault_exposure.rederived_msg_ids == (2,)
    assert r.rederived_records == 1
    # The anchor chain preserves the captured inter-send delta on node 0:
    # record 2 fires 15 cycles after record 1's *replayed* injection.
    assert r.injections[2] == r.injections[1] + 15
    # Record 3's dependency on 2 is intact, so it still obeys the
    # earliest-start rule off 2's re-derived delivery.
    assert r.injections[3] == r.deliveries[2] + 5


def test_no_stall_diagnostics_on_clean_replay(setting):
    exp, _, trace, _, _ = setting
    r = replay_trace(trace, optical_factory(exp.onoc, exp.seed))
    assert r.messages_unreplayed == 0
    assert r.stalled_count == 0
    assert r.stalled_msg_ids == []
    assert r.stalled_on == {}
    assert r.demoted_cyclic == 0


# ------------------------------------------------- degenerate dependency graphs
def _rec(msg_id, cause_id, t_inject, gap, t_deliver=None, src=0, dst=1,
         bound_id=-1, bound_gap=0):
    from repro.core.trace import TraceRecord

    return TraceRecord(
        msg_id=msg_id, key=(src, dst, "data", msg_id, 0), src=src, dst=dst,
        size_bytes=64, kind="data", t_inject=t_inject,
        t_deliver=t_inject + 10 if t_deliver is None else t_deliver,
        cause_id=cause_id, gap=gap, bound_id=bound_id, bound_gap=bound_gap)


def _cyclic_trace():
    """Two zero-latency records that cause each other — every per-edge
    causality equation balances, but the graph has no schedulable root.
    Built directly: Trace.validate() now rejects this shape."""
    from repro.core.trace import Trace

    records = [
        _rec(0, 1, 5, 0, t_deliver=5, src=0, dst=1),
        _rec(1, 0, 5, 0, t_deliver=5, src=1, dst=0),
    ]
    return Trace(records=records, end_markers=[], exec_time=0, meta={})


def test_validate_rejects_dependency_cycle():
    with pytest.raises(ValueError, match="dependency cycle"):
        _cyclic_trace().validate()


def test_cyclic_records_demoted_not_unreplayed(setting):
    """Regression: a rootless cycle (vacuously, 'all roots share offset 0')
    replayed on an empty network used to stall silently with
    messages_unreplayed > 0; cycle members now fall back to their captured
    timestamps and everything replays."""
    exp, *_ = setting
    sim, net = optical_factory(exp.onoc, exp.seed)()
    r = SelfCorrectingReplayer(_cyclic_trace(), sim, net).run()
    assert r.messages_unreplayed == 0
    assert r.messages_replayed == 2
    assert r.demoted_cyclic == 2
    assert r.stalled_count == 0
    # Demoted records replay at their captured timestamps.
    assert r.injections == {0: 5, 1: 5}


def test_cycle_descendants_fire_after_demotion(setting):
    """A record *downstream* of a cycle is not demoted — it self-corrects
    off the demoted members' actual deliveries."""
    from repro.core.trace import Trace

    exp, *_ = setting
    records = [
        _rec(0, 1, 5, 0, t_deliver=5, src=0, dst=1),
        _rec(1, 0, 5, 0, t_deliver=5, src=1, dst=0),
        _rec(2, 0, 10, 5, src=1, dst=2),        # caused by cycle member 0
    ]
    trace = Trace(records=records, end_markers=[], exec_time=0, meta={})
    sim, net = optical_factory(exp.onoc, exp.seed)()
    r = SelfCorrectingReplayer(trace, sim, net).run()
    assert r.messages_unreplayed == 0
    assert r.demoted_cyclic == 2
    # Record 2 was injected gap cycles after record 0's simulated delivery.
    assert r.injections[2] == r.deliveries[0] + 5


def test_offset_zero_roots_all_replay_on_idle_network(setting):
    """All-root traces sharing injection offset 0 replay completely on a
    fresh (empty) target network."""
    from repro.core.trace import Trace

    exp, *_ = setting
    records = [
        _rec(i, -1, 0, 0, src=i % 2, dst=2 + i % 2) for i in range(4)
    ]
    trace = Trace(records=records, end_markers=[], exec_time=0, meta={})
    trace.validate()
    sim, net = optical_factory(exp.onoc, exp.seed)()
    r = SelfCorrectingReplayer(trace, sim, net).run()
    assert r.messages_unreplayed == 0
    assert r.demoted_cyclic == 0
    assert all(t == 0 for t in r.injections.values())
