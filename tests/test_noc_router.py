"""Direct router-level unit tests: VC allocation, credits, datelines.

These poke the Router through the real network wiring but observe its
internal state between cycles — complementing the end-to-end tests in
test_noc_network.py.
"""

from __future__ import annotations


from repro.config import NocConfig
from repro.engine import Simulator
from repro.net import Message
from repro.noc import ElectricalNetwork
from repro.noc.router import EJECT_CREDITS
from repro.noc.topology import EAST, LOCAL, WEST


def make_net(cfg=None, seed=1):
    sim = Simulator(seed=seed)
    return sim, ElectricalNetwork(sim, cfg or NocConfig())


def test_initial_credits_match_buffer_depth():
    cfg = NocConfig(num_vcs=3, vc_depth=5)
    _, net = make_net(cfg)
    r = net.routers[5]
    for port in range(1, net.topo.num_ports):
        assert r.credits[port] == [5, 5, 5]
    assert r.credits[LOCAL] == [EJECT_CREDITS] * 3


def test_credits_conserved_after_drain():
    """After the network drains, every credit must be back home."""
    cfg = NocConfig(num_vcs=2, vc_depth=4)
    sim, net = make_net(cfg)
    for i in range(60):
        s, d = i % 16, (i * 5 + 2) % 16
        if s != d:
            sim.schedule(i, net.send, (Message(s, d, 96),))
    sim.run()
    assert net.quiescent()
    for r in net.routers:
        for port in range(1, net.topo.num_ports):
            if net.topo.neighbor(r.node, port) is not None:
                assert r.credits[port] == [cfg.vc_depth] * cfg.num_vcs, (
                    f"router {r.node} port {port} leaked credits"
                )
        assert r.credits[LOCAL] == [EJECT_CREDITS] * cfg.num_vcs
    for ni in net.nis:
        assert ni.credits == [cfg.vc_depth] * cfg.num_vcs


def test_output_vc_released_after_tail():
    sim, net = make_net()
    sim.schedule(0, net.send, (Message(0, 3, 64),))
    sim.run()
    for r in net.routers:
        for port_alloc in r.out_alloc:
            assert all(a is None for a in port_alloc)


def test_input_vc_state_reset_after_packet():
    sim, net = make_net()
    sim.schedule(0, net.send, (Message(0, 3, 64),))
    sim.run()
    for r in net.routers:
        for port_vcs in r.input_vcs:
            for ivc in port_vcs:
                assert not ivc.flits
                assert ivc.route_out is None and ivc.out_vc is None


def test_flits_routed_counter():
    sim, net = make_net()
    sim.schedule(0, net.send, (Message(0, 1, 64),))  # 4 flits, 1 hop
    sim.run()
    # Flits traverse router 0 (to EAST) and router 1 (to LOCAL).
    assert net.routers[0].flits_routed == 4
    assert net.routers[1].flits_routed == 4
    assert sum(r.flits_routed for r in net.routers) == 8


def test_link_flit_counters_follow_xy_route():
    sim, net = make_net()
    sim.schedule(0, net.send, (Message(0, 5, 16),))  # (0,0)->(1,1), XY
    sim.run()
    # XY: east first (0 -> 1), then north (1 -> 5).
    assert net.link_flits.get((0, EAST)) == 1
    assert (1, WEST) not in net.link_flits
    assert sum(net.link_flits.values()) == 2  # two inter-router hops


def test_dateline_vc_class_on_torus():
    cfg = NocConfig(topology="torus", num_vcs=2)
    sim, net = make_net(cfg)
    captured = {}

    # 3 -> 0 wraps east on a 4x4 torus: the packet must move to VC class 1.
    msg = Message(3, 0, 16)
    sim.schedule(0, net.send, (msg,))
    orig_send_flit = net.send_flit

    def spy(node, out_port, out_vc, flit):
        captured.setdefault((node, out_port), out_vc)
        orig_send_flit(node, out_port, out_vc, flit)

    net.send_flit = spy
    sim.run()
    # The wrap hop out of router 3 must use the upper VC class (vc 1).
    assert captured[(3, EAST)] == 1


def test_adaptive_route_prefers_credit_rich_port():
    cfg = NocConfig(routing="adaptive", num_vcs=2)
    sim, net = make_net(cfg)
    r0 = net.routers[0]
    # Destination (1,1): productive ports EAST and NORTH.  Drain NORTH's
    # adaptive-VC credits so EAST wins the congestion comparison.
    from repro.noc.topology import NORTH

    r0.credits[NORTH][1] = 0
    dst = net.topo.node_at(1, 1)
    port = r0._choose_route(r0.input_vcs[LOCAL][0], Message(0, dst, 16))
    assert port == EAST


def test_single_flit_packet_is_head_and_tail():
    sim, net = make_net()
    done = []
    net.set_delivery_handler(done.append)
    sim.schedule(0, net.send, (Message(0, 15, 8),))  # 1 flit
    sim.run()
    assert len(done) == 1


def test_buffered_flits_zero_after_drain():
    sim, net = make_net()
    for i in range(30):
        if i % 16 != (i * 3 + 1) % 16:
            sim.schedule(i, net.send, (Message(i % 16, (i * 3 + 1) % 16, 48),))
    sim.run()
    assert all(r.buffered_flits() == 0 for r in net.routers)
