"""Golden corpus: regen determinism, drift detection, checked-in integrity."""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.core.trace import Trace
from repro.validate import GOLDEN_SCENARIOS, check_golden, regen_golden
from repro.validate import invariants as inv
from repro.validate.golden import ENVELOPES_FILE, _capture, _trace_path

CHECKED_IN = pathlib.Path(__file__).parent / "golden"


def test_regen_is_byte_identical(tmp_path):
    files_a = regen_golden(tmp_path / "a")
    files_b = regen_golden(tmp_path / "b")
    assert [f.name for f in files_a] == [f.name for f in files_b]
    for fa, fb in zip(files_a, files_b):
        assert fa.read_bytes() == fb.read_bytes(), fa.name


def test_checked_in_corpus_matches_regen(tmp_path):
    """The committed tests/golden/ must be exactly what --regen-golden emits.

    The curated ``notes`` key is hand-written, not regenerated; seeding the
    tmp dir with the committed envelopes makes the byte comparison cover
    regen's notes-preservation as well.
    """
    (tmp_path / ENVELOPES_FILE).write_text(
        (CHECKED_IN / ENVELOPES_FILE).read_text())
    fresh = regen_golden(tmp_path)
    for f in fresh:
        committed = CHECKED_IN / f.name
        assert committed.exists(), f"{f.name} missing from tests/golden/"
        assert committed.read_bytes() == f.read_bytes(), (
            f"{f.name} drifted — run `repro validate --regen-golden` and "
            "review the diff")


def test_check_golden_passes_on_checked_in_corpus():
    assert check_golden(CHECKED_IN) == []


def test_checked_in_traces_satisfy_invariants():
    for scenario in GOLDEN_SCENARIOS:
        trace = Trace.from_json(
            _trace_path(CHECKED_IN, scenario).read_text())
        assert inv.check_trace(trace) == []
        assert trace.meta["workload"] == scenario.workload


def test_check_golden_reports_missing_corpus(tmp_path):
    failures = check_golden(tmp_path)
    assert len(failures) == 1
    assert "regen-golden" in failures[0]


def test_check_golden_detects_trace_tampering(tmp_path):
    regen_golden(tmp_path)
    victim = _trace_path(tmp_path, GOLDEN_SCENARIOS[0])
    obj = json.loads(victim.read_text())
    obj["records"][0][4] = 4096  # silently fatten a message
    victim.write_text(json.dumps(obj) + "\n")
    failures = check_golden(tmp_path)
    assert any("sha256" in f for f in failures)


def test_check_golden_detects_envelope_tampering(tmp_path):
    regen_golden(tmp_path)
    env_path = tmp_path / ENVELOPES_FILE
    env = json.loads(env_path.read_text())
    name = GOLDEN_SCENARIOS[0].name
    env["scenarios"][name]["sc_exec_error_pct"] = 99.9
    env_path.write_text(json.dumps(env, indent=2, sort_keys=True) + "\n")
    failures = check_golden(tmp_path)
    assert any("sc_exec_error_pct" in f and name in f for f in failures)


def test_check_golden_flags_unknown_scenarios(tmp_path):
    regen_golden(tmp_path)
    env_path = tmp_path / ENVELOPES_FILE
    env = json.loads(env_path.read_text())
    env["scenarios"]["ghost-scenario"] = {}
    env_path.write_text(json.dumps(env, indent=2, sort_keys=True) + "\n")
    failures = check_golden(tmp_path)
    assert any("ghost-scenario" in f for f in failures)


def test_capture_is_independent_of_prior_runs():
    """Canonical msg_ids: the same scenario captures byte-identically even
    after unrelated simulations advanced the global message-id counter."""
    scenario = GOLDEN_SCENARIOS[0]
    first = _capture(scenario).to_json()
    _capture(GOLDEN_SCENARIOS[1])  # burn a few thousand global msg ids
    second = _capture(scenario).to_json()
    assert first == second
    ids = [r[0] for r in json.loads(second)["records"]]
    assert ids == sorted(ids)
    assert ids[0] == 0 and ids[-1] == len(ids) - 1


def test_iterative_refinement_closes_awgr_outlier():
    """The recorded radix->awgr outlier study (envelopes.json ``notes``).

    Single-pass online self-correction sits at -7.59% against the
    execution-driven reference; five damped fixed-point passes
    (``repro.core.iterate``) must land within 1% — proving the outlier is
    capture-timing sensitivity, not a missing AWGR contention model.  The
    ``interp`` degraded-gap policy must remain a no-op on the intact trace.
    """
    import dataclasses

    from repro.config import (GAP_POLICY_INTERP, OnocConfig,
                              TRACE_SELF_CORRECTING, TraceConfig)
    from repro.core import replay_trace
    from repro.core.iterate import IterativeRefiner
    from repro.harness.builders import optical_factory

    scenario = next(s for s in GOLDEN_SCENARIOS if s.workload == "radix")
    trace = Trace.from_json(_trace_path(CHECKED_IN, scenario).read_text())
    env = json.loads((CHECKED_IN / ENVELOPES_FILE).read_text())
    ref = env["scenarios"][scenario.name]["ref_exec_time"]
    onoc = OnocConfig(num_nodes=scenario.cores,
                      num_wavelengths=scenario.wavelengths,
                      topology=scenario.target)

    cfg = TraceConfig(mode=TRACE_SELF_CORRECTING)
    sc = replay_trace(trace, optical_factory(onoc, scenario.seed), cfg)
    interp = replay_trace(
        trace, optical_factory(onoc, scenario.seed),
        dataclasses.replace(cfg, degraded_gap_policy=GAP_POLICY_INTERP))
    assert interp.exec_time_estimate == sc.exec_time_estimate

    refined = IterativeRefiner(
        trace, optical_factory(onoc, scenario.seed),
        max_iterations=5, damping=0.5).run()
    single_err = abs(sc.exec_time_estimate - ref) / ref * 100
    refined_err = abs(refined.exec_time_estimate - ref) / ref * 100
    assert single_err > 5.0          # the outlier is real...
    assert refined_err < 1.0         # ...and refinement closes it
    assert "notes" in env and "radix-awgr-outlier" in env["notes"]


def test_awgr_occupancy_hint_closes_radix_gap():
    """The online follow-up to the iterate study (``awgr-occupancy-hint``
    envelope note): reserving each (src, dst) λ-lane at dependency-release
    time closes the single-pass radix→awgr gap to < 2% without the 5×
    iterate cost.  The hint is workload-specific (it *hurts* fft/lu — see
    the note), so it must stay behind a default-off flag: the stock replay
    of the same scenario must reproduce the envelope exactly, and the flag
    must be a structural no-op on backends without per-pair lanes."""
    import dataclasses

    from repro.config import OnocConfig, TRACE_SELF_CORRECTING, TraceConfig
    from repro.core import replay_trace
    from repro.harness.builders import optical_factory

    env = json.loads((CHECKED_IN / ENVELOPES_FILE).read_text())
    assert "awgr-occupancy-hint" in env.get("notes", {})
    scenario = next(s for s in GOLDEN_SCENARIOS if s.workload == "radix")
    trace = Trace.from_json(_trace_path(CHECKED_IN, scenario).read_text())
    ref = env["scenarios"][scenario.name]["ref_exec_time"]
    onoc = OnocConfig(num_nodes=scenario.cores,
                      num_wavelengths=scenario.wavelengths,
                      topology=scenario.target)
    cfg = TraceConfig(mode=TRACE_SELF_CORRECTING)

    stock = replay_trace(trace, optical_factory(onoc, scenario.seed), cfg)
    assert (stock.exec_time_estimate
            == env["scenarios"][scenario.name]["sc_exec_estimate"])
    assert "occupancy_hint" not in stock.extra

    hinted = replay_trace(
        trace, optical_factory(onoc, scenario.seed),
        dataclasses.replace(cfg, awgr_occupancy_hint=True))
    err = abs(hinted.exec_time_estimate - ref) / ref * 100
    assert err < 2.0, (hinted.exec_time_estimate, ref)
    assert hinted.extra["occupancy_hint"]["deferred"] > 0
    assert hinted.messages_unreplayed == 0

    # No per-pair lanes on the crossbar: the flag must change nothing.
    fft = next(s for s in GOLDEN_SCENARIOS if s.workload == "fft")
    fft_trace = Trace.from_json(_trace_path(CHECKED_IN, fft).read_text())
    fft_onoc = OnocConfig(num_nodes=fft.cores, num_wavelengths=fft.wavelengths,
                          topology=fft.target)
    plain = replay_trace(fft_trace, optical_factory(fft_onoc, fft.seed), cfg)
    flagged = replay_trace(
        fft_trace, optical_factory(fft_onoc, fft.seed),
        dataclasses.replace(cfg, awgr_occupancy_hint=True))
    assert flagged.exec_time_estimate == plain.exec_time_estimate
    assert "occupancy_hint" not in flagged.extra

    # Event engine only: the generational solver has no release-order state.
    with pytest.raises(ValueError, match="event-engine only"):
        replay_trace(trace, optical_factory(onoc, scenario.seed),
                     dataclasses.replace(cfg, engine="generational",
                                         awgr_occupancy_hint=True))


@pytest.mark.parametrize("scenario", GOLDEN_SCENARIOS,
                         ids=lambda s: s.name)
def test_corpus_scenarios_are_cheap(scenario):
    # The corpus is re-verified on every CI run; keep each trace small.
    trace = Trace.from_json(_trace_path(CHECKED_IN, scenario).read_text())
    assert len(trace) < 5000
