"""Entity base-class tests."""

from __future__ import annotations

from repro.engine import Entity, Simulator


class Ticker(Entity):
    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.log = []

    def tick(self):
        self.log.append(self.now)


def test_entity_scheduling_sugar():
    sim = Simulator(seed=1)
    e = Ticker(sim, "t0")
    e.schedule(5, e.tick)
    e.schedule(2, e.tick)
    sim.run()
    assert e.log == [2, 5]
    assert e.now == 5


def test_entity_rng_is_named_stream():
    sim = Simulator(seed=9)
    a = Ticker(sim, "alpha").rng().random(4)
    # Same name on a fresh sim with the same seed -> identical stream.
    b = Ticker(Simulator(seed=9), "alpha").rng().random(4)
    assert (a == b).all()
    # Different name -> different stream.
    c = Ticker(Simulator(seed=9), "beta").rng().random(4)
    assert not (a == c).all()


def test_entity_repr():
    e = Ticker(Simulator(), "x")
    assert "Ticker" in repr(e) and "x" in repr(e)
