"""Message / adapter-interface unit tests."""

from __future__ import annotations

import pytest

from repro.config import NocConfig, OnocConfig
from repro.engine import Simulator
from repro.net import Message, NetworkAdapter, reset_message_ids
from repro.noc import ElectricalNetwork
from repro.onoc import build_optical_network


def test_message_validation():
    with pytest.raises(ValueError, match="negative endpoint"):
        Message(-1, 2, 8)
    with pytest.raises(ValueError, match="size_bytes"):
        Message(0, 1, 0)


def test_message_ids_monotone():
    a, b = Message(0, 1, 8), Message(0, 1, 8)
    assert b.id > a.id


def test_explicit_message_id_preserved():
    m = Message(0, 1, 8, msg_id=424242)
    assert m.id == 424242


def test_latency_requires_delivery():
    m = Message(0, 1, 8)
    with pytest.raises(ValueError, match="not delivered"):
        _ = m.latency
    m.inject_time = 5
    m.deliver_time = 25
    assert m.latency == 20


def test_reset_message_ids():
    reset_message_ids()
    assert Message(0, 1, 8).id == 0


def test_adapters_satisfy_protocol():
    sim = Simulator(seed=1)
    elec = ElectricalNetwork(sim, NocConfig())
    assert isinstance(elec, NetworkAdapter)
    for topology in ("crossbar", "circuit_mesh", "swmr_crossbar", "awgr"):
        sim2 = Simulator(seed=1)
        net = build_optical_network(sim2, OnocConfig(topology=topology))
        assert isinstance(net, NetworkAdapter), topology
        assert net.num_nodes == 16


def test_hybrid_satisfies_protocol():
    from repro.onoc import HybridConfig, HybridNetwork

    sim = Simulator(seed=1)
    net = HybridNetwork(sim, HybridConfig(noc=NocConfig(), onoc=OnocConfig()))
    assert isinstance(net, NetworkAdapter)


def test_on_delivery_callback_receives_message():
    sim = Simulator(seed=1)
    net = ElectricalNetwork(sim, NocConfig())
    seen = []
    msg = Message(0, 5, 16, payload={"tag": 9},
                  on_delivery=lambda m: seen.append(m))
    sim.schedule(0, net.send, (msg,))
    sim.run()
    assert seen == [msg]
    assert seen[0].payload == {"tag": 9}
