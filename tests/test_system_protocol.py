"""Coherence-protocol scenario tests on a small 4-core system.

Each scenario drives handcrafted programs through the full machine and then
checks both the observable timing/counters and a global *coherence
invariant*: the directory's view must be consistent with the L1 contents
(M lines have exactly one owner holding M; no L1 holds a line the directory
thinks is uncached unless it was silently evicted — which for S lines means
the L1 copy may be absent but never *more* permissive than the directory).
"""

from __future__ import annotations

import pytest

from repro.config import CacheConfig, NocConfig, SystemConfig
from repro.engine import Simulator
from repro.noc import ElectricalNetwork
from repro.system import FullSystem
from repro.system.cache import CacheLineState
from repro.system.ops import OP_BARRIER, OP_COMPUTE, OP_LOAD, OP_STORE

LINE = 64  # line size in bytes


def small_cfg(l1_bytes=1024) -> SystemConfig:
    return SystemConfig(
        num_cores=4,
        l1=CacheConfig(size_bytes=l1_bytes, assoc=2, line_bytes=64,
                       hit_latency=1),
        l2_slice=CacheConfig(size_bytes=4096, assoc=4, line_bytes=64,
                             hit_latency=4),
        mem_latency=30,
        num_mem_ctrls=2,
    )


def run_system(programs, syscfg=None, seed=1):
    syscfg = syscfg or small_cfg()
    sim = Simulator(seed=seed)
    net = ElectricalNetwork(sim, NocConfig(width=2, height=2))
    system = FullSystem(sim, syscfg, net, programs)
    res = system.run(max_cycles=2_000_000)
    check_coherence_invariant(system)
    return system, res


def check_coherence_invariant(system: FullSystem) -> None:
    n = system.cfg.num_cores
    for home in system.homes:
        for line, entry in home.directory.items():
            l1_states = [system.l1s[c].cache.peek(line) for c in range(n)]
            if entry.state == CacheLineState.MODIFIED:
                assert l1_states[entry.owner] == CacheLineState.MODIFIED, (
                    f"line {line}: dir says M@{entry.owner} but L1 disagrees"
                )
                others = [s for c, s in enumerate(l1_states) if c != entry.owner]
                assert all(s == CacheLineState.INVALID for s in others)
            elif entry.state == CacheLineState.SHARED:
                for c, s in enumerate(l1_states):
                    if c in entry.sharers:
                        # Silent eviction allows INVALID, never MODIFIED.
                        assert s in (CacheLineState.SHARED,
                                     CacheLineState.INVALID)
                    else:
                        assert s == CacheLineState.INVALID
            else:  # directory INVALID
                assert all(s == CacheLineState.INVALID for s in l1_states), (
                    f"line {line}: dir INVALID but an L1 holds it"
                )


def prog(*ops):
    return list(ops)


def load(line):
    return (OP_LOAD, line * LINE)


def store(line):
    return (OP_STORE, line * LINE)


# ------------------------------------------------------------- scenarios
def test_read_sharing_downgrades_owner():
    """Core 0 dirties a line; every other core reads it: one FETCH downgrade
    then L2-served sharing."""
    x = 13   # home = 13 % 4 = 1
    programs = [
        prog(store(x), (OP_BARRIER, 0)),
        prog((OP_BARRIER, 0), load(x)),
        prog((OP_BARRIER, 0), load(x)),
        prog((OP_BARRIER, 0), load(x)),
    ]
    system, _ = run_system(programs)
    home = system.homes[x % 4]
    entry = home.directory[x]
    assert entry.state == CacheLineState.SHARED
    assert {1, 2, 3} <= entry.sharers
    assert home.fetches_sent == 1


def test_write_invalidates_all_sharers():
    x = 6    # home 2
    programs = [
        prog(load(x), (OP_BARRIER, 0), store(x)),
        prog(load(x), (OP_BARRIER, 0)),
        prog(load(x), (OP_BARRIER, 0)),
        prog(load(x), (OP_BARRIER, 0)),
    ]
    system, _ = run_system(programs)
    home = system.homes[x % 4]
    entry = home.directory[x]
    assert entry.state == CacheLineState.MODIFIED
    assert entry.owner == 0
    assert home.invalidations_sent == 3


def test_upgrade_does_not_refetch_memory():
    x = 5
    programs = [
        prog(load(x), store(x)),
        prog((OP_COMPUTE, 1),), prog((OP_COMPUTE, 1),), prog((OP_COMPUTE, 1),),
    ]
    system, _ = run_system(programs)
    assert system.l1s[0].upgrades == 1
    # exactly one memory fetch (the initial read), not a second for the write
    assert system.homes[x % 4].mem_reads == 1


def test_migratory_ownership_chain():
    """Each core in turn read-modify-writes one line: M ownership migrates
    through FETCH_INV at every step."""
    x = 7
    programs = []
    for c in range(4):
        ops = []
        for r in range(4):
            bid = r  # every core barriers each round
            if r == c:
                ops += [load(x), store(x)]
            ops.append((OP_BARRIER, bid))
        programs.append(prog(*ops))
    system, _ = run_system(programs)
    entry = system.homes[x % 4].directory[x]
    assert entry.state == CacheLineState.MODIFIED
    assert entry.owner == 3  # last writer in program order
    assert system.homes[x % 4].fetches_sent >= 3


def test_writeback_on_l1_eviction():
    """Dirty evictions must write back and clear directory ownership."""
    # 128-byte, 2-way L1: one set. Three conflicting dirty lines force WBs.
    syscfg = small_cfg(l1_bytes=128)
    lines = [1, 5, 9]  # all map to the single set; homes 1, 1, 1
    programs = [
        prog(*(store(line) for line in lines)),
        prog((OP_COMPUTE, 1),), prog((OP_COMPUTE, 1),), prog((OP_COMPUTE, 1),),
    ]
    system, _ = run_system(programs, syscfg)
    assert system.l1s[0].writebacks >= 1
    evicted_line = lines[0]
    entry = system.homes[evicted_line % 4].directory[evicted_line]
    assert entry.state == CacheLineState.INVALID


def test_memory_controller_traffic():
    x = 11
    programs = [prog(load(x))] + [prog((OP_COMPUTE, 1),)] * 3
    system, _ = run_system(programs)
    assert sum(h.mem_reads for h in system.homes) == 1
    assert sum(m.requests_served for m in system.memctrls.values()) == 1


def test_second_reader_served_from_l2():
    x = 11
    programs = [
        prog(load(x), (OP_BARRIER, 0)),
        prog((OP_BARRIER, 0), load(x)),
        prog((OP_COMPUTE, 1), (OP_BARRIER, 0)),
        prog((OP_BARRIER, 0),),
    ]
    system, _ = run_system(programs)
    # one memory fetch total: the second reader hits the L2 slice
    assert sum(h.mem_reads for h in system.homes) == 1


def test_barrier_blocks_until_all_arrive():
    slow = 500
    programs = [
        prog((OP_COMPUTE, slow), (OP_BARRIER, 0), store(9)),
        prog((OP_BARRIER, 0), store(10)),
        prog((OP_BARRIER, 0), store(11)),
        prog((OP_BARRIER, 0), store(12)),
    ]
    system, res = run_system(programs)
    # nobody can finish before the slow core reached the barrier
    assert min(res.per_core_finish) > slow
    assert res.barriers == 1


def test_purely_local_access_uses_no_network():
    # line 0: home node 0, memctrl node 0 — everything stays on-tile.
    programs = [prog(load(0), store(0))] + [prog((OP_COMPUTE, 1),)] * 3
    system, res = run_system(programs)
    assert res.messages == 0


def test_l1_hit_fast_path():
    programs = [prog(load(8), load(8), load(8))] + [prog((OP_COMPUTE, 1),)] * 3
    system, res = run_system(programs)
    assert system.l1s[0].cache.hits == 2
    assert system.l1s[0].cache.misses == 1


def test_per_core_finish_times_recorded():
    programs = [prog((OP_COMPUTE, 10 * (c + 1)),) for c in range(4)]
    _, res = run_system(programs)
    assert res.per_core_finish == [10, 20, 30, 40]
    assert res.exec_time_cycles == 40


def test_program_count_mismatch_rejected():
    sim = Simulator()
    net = ElectricalNetwork(sim, NocConfig(width=2, height=2))
    with pytest.raises(ValueError, match="programs"):
        FullSystem(sim, small_cfg(), net, [prog((OP_COMPUTE, 1),)] * 3)


def test_network_size_mismatch_rejected():
    sim = Simulator()
    net = ElectricalNetwork(sim, NocConfig(width=4, height=4))
    with pytest.raises(ValueError, match="nodes"):
        FullSystem(sim, small_cfg(), net, [prog((OP_COMPUTE, 1),)] * 4)


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_randshare_stress_preserves_invariant(seed):
    """Race-heavy workload across seeds: protocol must stay consistent."""
    from repro.system import build_workload

    programs = build_workload("randshare", 4, seed=seed)
    system, res = run_system(programs, seed=seed)
    assert res.exec_time_cycles > 0
