"""Quantify the gap-scaling metamorphic slack (ROADMAP: measured, not 1%).

The gap-scaling check (`invariants.check_gap_scaling`) asserts that
stretching every compute gap by k >= 1 never shrinks the self-correcting
exec-time prediction.  Historically it granted a hand-waved 1% wiggle for
"congestion thinning" (longer gaps can shave queueing latency even as total
time grows).  This module *measures* that wiggle over the golden corpus —
every stored trace, gap-scaled by (1, 2, 4), replayed on all four optical
backends — and pins the result:

* measured worst dip: **0.0%** — the prediction is strictly monotone on
  every trace x backend x factor combination we can measure;
* the measurement is recorded in ``tests/golden/envelopes.json`` under
  ``bounds.gap_scaling_max_dip_pct`` (regen rewrites it, so drift is a
  reviewable diff);
* the check's live slack ``GAP_SCALING_SLACK_PCT`` (0.25%) must dominate
  the pinned measurement — a quarter of the old 1%, and four orders tighter
  in spirit since the measured dip is zero.

The full 16-combination sweep costs a few seconds; it runs once per module.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.validate.golden import ENVELOPES_FILE, measure_gap_scaling_dip
from repro.validate.invariants import GAP_SCALING_SLACK_PCT

GOLDEN_DIR = Path(__file__).parent / "golden"


@pytest.fixture(scope="module")
def measured_dip() -> float:
    return measure_gap_scaling_dip(GOLDEN_DIR)


@pytest.fixture(scope="module")
def pinned_bounds() -> dict:
    blob = json.loads((GOLDEN_DIR / ENVELOPES_FILE).read_text())
    return blob["bounds"]


def test_measured_dip_matches_the_pinned_bound(measured_dip, pinned_bounds):
    """The corpus pin is the live measurement, not a stale hand edit."""
    assert round(measured_dip, 4) == pinned_bounds["gap_scaling_max_dip_pct"]


def test_prediction_is_strictly_monotone_on_the_corpus(measured_dip):
    """The ROADMAP answer: no congestion-thinning dip exists anywhere in the
    measured space — scaling gaps up never shrinks the prediction at all."""
    assert measured_dip == 0.0


def test_slack_dominates_the_measurement(measured_dip, pinned_bounds):
    """The live slack must cover what we measured (with room), and the
    envelope must record the slack that was in force when it was pinned."""
    assert measured_dip <= GAP_SCALING_SLACK_PCT
    assert pinned_bounds["gap_scaling_slack_pct"] == GAP_SCALING_SLACK_PCT
    # Tightened from the historical 1% wiggle.
    assert GAP_SCALING_SLACK_PCT <= 0.25
