"""Property tests for the consistent-hash ring (``repro.serve.ring``).

These pin the three contracts the fabric's routing layer rests on (see the
module docstring of :mod:`repro.serve.ring`):

* **determinism** — placement is a pure function of the member-id *set*;
  insertion order, incremental vs batch construction, and process state
  must not matter, or peer nodes would disagree about key ownership;
* **balance** — ownership splits roughly evenly across members (within a
  measured bound over >= 1k keys);
* **monotonicity** — a join only moves keys *onto* the new node, a leave
  only moves the departed node's keys; everything else stays put, which
  is what keeps re-sharding cheap and warm caches warm.

Deterministic pins run plain; the general laws run under hypothesis.
"""

from __future__ import annotations

import string

import pytest
from hypothesis import given, settings, strategies as st

from repro.serve.ring import DEFAULT_VNODES, HashRing

# Enough keys for the balance bound to be meaningful (the issue floor is
# 1k); hex-ish strings mimic the sha256 content keys the fabric routes.
KEYS_1K = [f"key-{i:06d}" for i in range(1024)]

node_ids = st.lists(
    st.text(alphabet=string.ascii_lowercase + string.digits + ":.-",
            min_size=1, max_size=12),
    min_size=1, max_size=8, unique=True)

keys = st.lists(st.text(min_size=0, max_size=40), max_size=32)


# -------------------------------------------------------------- basics
def test_ring_validates_inputs():
    with pytest.raises(ValueError):
        HashRing(vnodes=0)
    with pytest.raises(ValueError):
        HashRing([""])
    with pytest.raises(ValueError):
        HashRing([None])  # type: ignore[list-item]


def test_empty_ring_owns_nothing():
    ring = HashRing()
    assert ring.owner("anything") is None
    assert len(ring) == 0
    assert ring.spread(KEYS_1K) == {}


def test_single_node_owns_everything():
    ring = HashRing(["solo"])
    assert all(ring.owner(k) == "solo" for k in KEYS_1K[:64])
    assert ring.spread(KEYS_1K) == {"solo": len(KEYS_1K)}


def test_add_remove_membership_round_trip():
    ring = HashRing(["a"])
    assert ring.add("b") and not ring.add("b")
    assert "b" in ring and ring.nodes == {"a", "b"}
    assert ring.remove("b") and not ring.remove("b")
    assert ring.nodes == {"a"}


# -------------------------------------------------------- determinism
@settings(deadline=None, max_examples=50)
@given(nodes=node_ids, sample=keys)
def test_placement_ignores_construction_order(nodes, sample):
    """Batch, reversed, and incremental construction all agree — placement
    is a function of the member *set* only."""
    batch = HashRing(nodes)
    reverse = HashRing(list(reversed(nodes)))
    grown = HashRing()
    for n in sorted(nodes):
        grown.add(n)
    for key in sample + KEYS_1K[:16]:
        assert batch.owner(key) == reverse.owner(key) == grown.owner(key)


@settings(deadline=None, max_examples=50)
@given(nodes=node_ids, sample=keys)
def test_placement_is_stable_across_instances(nodes, sample):
    """Two independently built rings (as two fabric nodes would hold)
    always agree, and every key maps to a real member."""
    a, b = HashRing(nodes), HashRing(nodes)
    for key in sample:
        owner = a.owner(key)
        assert owner == b.owner(key)
        assert owner in a.nodes


def test_placement_pinned_against_accidental_rehash():
    """A golden pin: the hash layout is part of the fabric's wire contract
    (peers computing different placements would double-execute work), so
    a silent change to the point function must fail loudly."""
    ring = HashRing(["n0", "n1", "n2"], vnodes=128)
    placed = {k: ring.owner(k) for k in ("alpha", "beta", "gamma", "delta")}
    assert placed == {"alpha": "n0", "beta": "n0",
                      "gamma": "n0", "delta": "n1"}


# ------------------------------------------------------------- balance
def test_balance_within_bound_over_1k_keys():
    """With default vnodes, a small cluster splits >= 1k keys with a
    max/mean ownership ratio under 1.45 (the bound the ring module
    advertises) and no starved node."""
    for n in (2, 3, 5):
        ring = HashRing([f"node-{i}" for i in range(n)],
                        vnodes=DEFAULT_VNODES)
        spread = ring.spread(KEYS_1K)
        assert sum(spread.values()) == len(KEYS_1K)
        mean = len(KEYS_1K) / n
        assert max(spread.values()) / mean < 1.45, (n, spread)
        assert min(spread.values()) > 0


@settings(deadline=None, max_examples=25)
@given(nodes=st.lists(st.text(alphabet=string.ascii_lowercase,
                              min_size=1, max_size=8),
                      min_size=2, max_size=6, unique=True))
def test_balance_holds_for_arbitrary_member_names(nodes):
    """Balance is a property of the point function, not of nice node
    names; arbitrary member ids stay within a looser 2x bound."""
    ring = HashRing(nodes, vnodes=DEFAULT_VNODES)
    spread = ring.spread(KEYS_1K)
    mean = len(KEYS_1K) / len(nodes)
    assert max(spread.values()) / mean < 2.0, spread
    assert min(spread.values()) > 0


def test_more_vnodes_tighten_balance():
    nodes = [f"n{i}" for i in range(3)]
    coarse = HashRing(nodes, vnodes=8).spread(KEYS_1K)
    fine = HashRing(nodes, vnodes=256).spread(KEYS_1K)

    def ratio(spread):
        return max(spread.values()) / (len(KEYS_1K) / len(nodes))

    assert ratio(fine) < ratio(coarse)


# -------------------------------------------------------- monotonicity
@settings(deadline=None, max_examples=50)
@given(nodes=node_ids, joiner=st.text(alphabet=string.ascii_lowercase,
                                      min_size=1, max_size=8))
def test_join_only_moves_keys_onto_the_joiner(nodes, joiner):
    """Adding a member never reshuffles unrelated keys: any key whose
    owner changed is now owned by the joiner."""
    ring = HashRing(nodes, vnodes=32)
    before = {k: ring.owner(k) for k in KEYS_1K}
    if not ring.add(joiner):        # already a member: placement unchanged
        assert {k: ring.owner(k) for k in KEYS_1K} == before
        return
    for key, old in before.items():
        new = ring.owner(key)
        if new != old:
            assert new == joiner


@settings(deadline=None, max_examples=50)
@given(nodes=st.lists(st.text(alphabet=string.ascii_lowercase,
                              min_size=1, max_size=8),
                      min_size=2, max_size=6, unique=True),
       data=st.data())
def test_leave_only_moves_the_leavers_keys(nodes, data):
    """Removing a member strands only its own keys: every key it did not
    own keeps its owner, and its keys land on surviving members."""
    ring = HashRing(nodes, vnodes=32)
    leaver = data.draw(st.sampled_from(sorted(nodes)))
    before = {k: ring.owner(k) for k in KEYS_1K}
    assert ring.remove(leaver)
    for key, old in before.items():
        new = ring.owner(key)
        if old == leaver:
            assert new in ring.nodes and new != leaver
        else:
            assert new == old


def test_join_then_leave_restores_placement():
    """A join followed by the same node leaving is a no-op for placement —
    the property that makes a bounced node cheap for the fabric."""
    ring = HashRing(["a", "b", "c"])
    before = {k: ring.owner(k) for k in KEYS_1K}
    ring.add("d")
    ring.remove("d")
    assert {k: ring.owner(k) for k in KEYS_1K} == before
