"""Op encoding and workload-generator structural tests."""

from __future__ import annotations

import pytest

from repro.system.ops import (
    OP_BARRIER,
    OP_COMPUTE,
    OP_LOAD,
    OP_STORE,
    check_barrier_consistency,
    op_histogram,
    validate_program,
)
from repro.system.workloads import WORKLOADS, build_workload


def test_validate_program_accepts_good():
    prog = [(OP_COMPUTE, 5), (OP_LOAD, 64), (OP_STORE, 128), (OP_BARRIER, 0)]
    assert validate_program(prog) == prog


@pytest.mark.parametrize("bad", [
    [(99, 0)],
    [(OP_COMPUTE, -1)],
    [(OP_LOAD, -5)],
    [(OP_BARRIER, -1)],
    [(OP_LOAD,)],
])
def test_validate_program_rejects_bad(bad):
    with pytest.raises(ValueError):
        validate_program(bad)  # type: ignore[arg-type]


def test_op_histogram():
    prog = [(OP_COMPUTE, 5), (OP_LOAD, 0), (OP_LOAD, 64), (OP_BARRIER, 0)]
    h = op_histogram(prog)
    assert h == {"compute": 1, "load": 2, "store": 0, "barrier": 1}


def test_barrier_consistency_ok():
    progs = [[(OP_BARRIER, 0), (OP_BARRIER, 1)],
             [(OP_COMPUTE, 3), (OP_BARRIER, 0), (OP_BARRIER, 1)]]
    assert check_barrier_consistency(progs) == [0, 1]


def test_barrier_mismatch_detected():
    progs = [[(OP_BARRIER, 0)], [(OP_BARRIER, 1)]]
    with pytest.raises(ValueError, match="differs"):
        check_barrier_consistency(progs)


def test_barrier_duplicate_ids_detected():
    progs = [[(OP_BARRIER, 0), (OP_BARRIER, 0)]] * 2
    with pytest.raises(ValueError, match="unique"):
        check_barrier_consistency(progs)


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_workloads_generate_valid_programs(name):
    progs = build_workload(name, 16, seed=3)
    assert len(progs) == 16
    assert all(len(p) > 0 for p in progs)
    # every core does at least some memory traffic
    for p in progs:
        h = op_histogram(p)
        assert h["load"] + h["store"] > 0


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_workloads_deterministic(name):
    a = build_workload(name, 8, seed=11)
    b = build_workload(name, 8, seed=11)
    assert a == b


def test_workloads_differ_across_seeds():
    a = build_workload("randshare", 8, seed=1)
    b = build_workload("randshare", 8, seed=2)
    assert a != b


def test_workload_scale_grows_programs():
    small = build_workload("fft", 8, seed=1, scale=0.5)
    big = build_workload("fft", 8, seed=1, scale=2.0)
    assert sum(map(len, big)) > sum(map(len, small))


def test_workload_odd_core_counts():
    for name in sorted(WORKLOADS):
        progs = build_workload(name, 5, seed=4)
        assert len(progs) == 5


def test_unknown_workload():
    with pytest.raises(ValueError, match="unknown workload"):
        build_workload("linpack", 16, seed=0)


def test_workload_bad_args():
    with pytest.raises(ValueError):
        build_workload("fft", 0, seed=0)
    with pytest.raises(ValueError):
        build_workload("fft", 4, seed=0, scale=0)
