"""CacheArray unit tests: lookup, LRU, eviction, pinning."""

from __future__ import annotations

import pytest

from repro.config import CacheConfig
from repro.system.cache import CacheArray, CacheLineState

S = CacheLineState.SHARED
M = CacheLineState.MODIFIED
INV = CacheLineState.INVALID


def tiny(assoc=2, sets=2):
    return CacheArray(CacheConfig(size_bytes=assoc * sets * 64, assoc=assoc,
                                  line_bytes=64, hit_latency=1))


def test_miss_then_hit():
    c = tiny()
    assert c.lookup(5) == INV
    assert c.misses == 1
    c.install(5, S)
    assert c.lookup(5) == S
    assert c.hits == 1


def test_peek_does_not_touch_counters():
    c = tiny()
    c.install(5, S)
    h, m = c.hits, c.misses
    assert c.peek(5) == S
    assert c.peek(7) == INV
    assert (c.hits, c.misses) == (h, m)


def test_install_into_free_way_no_eviction():
    c = tiny(assoc=2, sets=1)
    assert c.install(0, S) is None
    assert c.install(1, M) is None
    assert c.occupancy == 2


def test_lru_eviction_order():
    c = tiny(assoc=2, sets=1)
    c.install(0, S)
    c.install(1, S)
    c.lookup(0)                      # 0 is now MRU
    evicted = c.install(2, S)
    assert evicted == (1, S)         # LRU victim
    assert c.peek(1) == INV
    assert c.evictions == 1


def test_install_refresh_in_place():
    c = tiny(assoc=2, sets=1)
    c.install(0, S)
    assert c.install(0, M) is None   # state upgrade, no eviction
    assert c.peek(0) == M
    assert c.occupancy == 1


def test_set_state_and_invalidate():
    c = tiny()
    c.install(4, S)
    c.set_state(4, M)
    assert c.peek(4) == M
    assert c.invalidate(4) == M
    assert c.peek(4) == INV
    assert c.invalidate(4) == INV      # idempotent
    with pytest.raises(KeyError):
        c.set_state(4, S)


def test_set_state_invalid_drops_line():
    c = tiny()
    c.install(4, S)
    c.set_state(4, CacheLineState.INVALID)
    assert c.peek(4) == INV
    assert c.occupancy == 0


def test_install_invalid_state_rejected():
    c = tiny()
    with pytest.raises(ValueError):
        c.install(1, INV)


def test_victim_veto_picks_other_way():
    c = tiny(assoc=2, sets=1)
    c.install(0, M)
    c.install(1, S)
    c.lookup(0)  # 0 MRU, so 1 would be the LRU victim
    evicted = c.install(2, S, victim_ok=lambda line, st: line != 1)
    assert evicted == (0, M)         # veto forced the MRU way out


def test_all_ways_pinned_raises():
    c = tiny(assoc=2, sets=1)
    c.install(0, M)
    c.install(1, M)
    with pytest.raises(RuntimeError, match="pinned"):
        c.install(2, S, victim_ok=lambda line, st: False)


def test_sets_are_independent():
    c = tiny(assoc=1, sets=4)
    for line in range(4):            # each maps to its own set
        c.install(line, S)
    assert c.occupancy == 4
    assert c.install(4, S) == (0, S)  # conflicts only with line 0's set


def test_resident_lines_sorted():
    c = tiny(assoc=4, sets=4)
    for line in (9, 2, 7):
        c.install(line, S)
    assert c.resident_lines() == [2, 7, 9]


def test_negative_line_rejected():
    c = tiny()
    with pytest.raises(ValueError):
        c.lookup(-1)
