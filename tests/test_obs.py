"""Tests for the ``repro.obs`` instrumentation layer.

Covers the ISSUE.md checklist: registry merge associativity, timeline
ring-buffer wraparound, the disabled path staying a strict no-op, kernel
probe accounting, deterministic sweep-runner metric merging (worker-count
independent), and the obs-aware cache salt.

``obs_task`` lives at module level so worker processes can resolve it by
dotted reference (``tests.test_obs:obs_task``), like the real drivers.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro import obs
from repro.engine import Simulator
from repro.harness import SweepRunner, task
from repro.obs.registry import NULL_SCOPE, Registry, Scope, format_value
from repro.obs.timeline import Timeline


@pytest.fixture(autouse=True)
def _clean_obs_state():
    """Obs state is process-global; start and leave every test pristine."""
    obs.disable()
    obs.disable_timeline()
    obs.registry().clear()
    yield
    obs.disable()
    obs.disable_timeline()
    obs.registry().clear()


# ------------------------------------------------- module-level task fns
def obs_task(n: int) -> int:
    """Sweep task that records metrics (when enabled) and returns n*n."""
    m = obs.metrics("task")
    m.counter("calls").inc()
    m.counter("n_total").inc(n)
    m.gauge("n_max").set_max(n)
    m.distribution("n").observe(float(n))
    return n * n


def marker_task(x: int, marker_dir: str) -> int:
    """Side-effecting task: proves (non-)execution via marker files."""
    d = pathlib.Path(marker_dir)
    d.mkdir(parents=True, exist_ok=True)
    (d / f"ran_{x}_{len(list(d.iterdir()))}").touch()
    obs.metrics("marker").counter("runs").inc()
    return x + 1


# ---------------------------------------------------------------- registry
def test_registry_counter_gauge_distribution():
    reg = Registry()
    c = reg.counter("hits")
    c.inc()
    c.inc(4)
    g = reg.gauge("depth")
    g.set(3.0)
    g.set_max(7.0)
    g.set_max(2.0)
    d = reg.distribution("lat")
    for v in (1.0, 2.0, 3.0):
        d.observe(v)
    snap = reg.snapshot()
    assert snap["hits"]["value"] == 5
    assert snap["depth"]["value"] == 7.0
    assert snap["lat"]["count"] == 3
    assert snap["lat"]["total"] == pytest.approx(6.0)
    assert snap["lat"]["min"] == 1.0 and snap["lat"]["max"] == 3.0
    # Same name + same kind is the same object; a kind clash is an error.
    assert reg.counter("hits") is c
    with pytest.raises(TypeError):
        reg.gauge("hits")
    with pytest.raises(TypeError):
        reg.distribution("depth")


def test_scope_prefixes_names():
    reg = Registry()
    scope = Scope(reg, "net.mesh")
    scope.counter("injected").inc(2)
    assert reg.snapshot()["net.mesh.injected"]["value"] == 2


def test_format_value_is_one_line():
    reg = Registry()
    reg.counter("c").inc(3)
    reg.gauge("g").set_max(1.5)
    d = reg.distribution("d")
    d.observe(2.0)
    for entry in reg.snapshot().values():
        text = format_value(entry)
        assert "\n" not in text and text


def _filled(seed_values):
    reg = Registry()
    for v in seed_values:
        reg.counter("c").inc(v)
        reg.gauge("g").set_max(float(v))
        reg.distribution("d").observe(float(v))
    return reg.snapshot()


def _merge(*snaps):
    reg = Registry()
    for s in snaps:
        reg.merge_snapshot(s)
    return reg.snapshot()


def test_merge_snapshot_is_associative():
    a = _filled([1, 2])
    b = _filled([30, 4])
    c = _filled([5, 600])
    left = _merge(_merge(a, b), c)
    right = _merge(a, _merge(b, c))
    # Counters, gauges, and the integer distribution fields are exact.
    assert left["c"] == right["c"]
    assert left["g"] == right["g"]
    for field in ("count", "min", "max"):
        assert left["d"][field] == right["d"][field]
    # Mean/m2 are float-associative only up to rounding.
    assert left["d"]["mean"] == pytest.approx(right["d"]["mean"])
    assert left["d"]["m2"] == pytest.approx(right["d"]["m2"])
    assert left["d"]["total"] == pytest.approx(right["d"]["total"])


def test_merge_with_empty_is_identity():
    a = _filled([7, 8, 9])
    assert _merge(a, Registry().snapshot()) == a
    assert _merge(Registry().snapshot(), a) == a


def test_registry_from_snapshot_roundtrip():
    a = _filled([3, 1, 4, 1, 5])
    json.dumps(a)  # snapshots must be pure JSON
    assert Registry.from_snapshot(a).snapshot() == a


# ---------------------------------------------------------------- timeline
def test_timeline_ring_wraparound():
    tl = Timeline(capacity=4)
    for i in range(6):
        tl.record(10 * i, f"e{i}", "tick")
    assert tl.recorded == 6
    assert tl.dropped == 2
    events = tl.events()
    assert len(events) == 4
    # Oldest two overwritten; survivors in insertion order.
    assert [e[0] for e in events] == [20, 30, 40, 50]
    assert [e[1] for e in events] == ["e2", "e3", "e4", "e5"]


def test_timeline_no_wrap_keeps_order():
    tl = Timeline(capacity=8)
    for i in range(3):
        tl.record(i, "x", f"k{i}")
    assert tl.dropped == 0
    assert [e[2] for e in tl.events()] == ["k0", "k1", "k2"]


def test_timeline_chrome_trace_structure():
    tl = Timeline(capacity=16)
    tl.record(5, "node0", "inject")
    tl.record(9, "node1", "deliver")
    doc = tl.to_chrome_trace()
    json.dumps(doc)
    events = doc["traceEvents"]
    metas = [e for e in events if e["ph"] == "M"]
    instants = [e for e in events if e["ph"] == "i"]
    assert {m["args"]["name"] for m in metas} == {"node0", "node1"}
    assert [e["ts"] for e in instants] == [5, 9]
    assert {e["name"] for e in instants} == {"inject", "deliver"}


def test_timeline_write_chrome_trace(tmp_path):
    tl = Timeline(capacity=4)
    tl.record(1, "a", "x")
    out = tmp_path / "trace.json"
    tl.write_chrome_trace(out)
    assert json.loads(out.read_text())["traceEvents"]


# ----------------------------------------------------------- disabled path
def test_disabled_path_is_noop():
    assert not obs.enabled()
    scope = obs.metrics("anything")
    assert scope is NULL_SCOPE
    # All null-metric operations are accepted and record nothing.
    scope.counter("c").inc(5)
    scope.gauge("g").set_max(1.0)
    scope.distribution("d").observe(2.0)
    assert obs.registry().snapshot() == {}
    assert obs.timeline() is None
    assert obs.cache_token() == ""


def test_disabled_probes_are_none():
    assert not obs.enabled()
    sim = Simulator()
    assert obs.attach_kernel_probe(sim) is None
    assert sim.probe is None
    assert obs.net_probe("mesh") is None
    assert obs.replay_scope("self-correcting") is None


def test_collecting_restores_ambient_state():
    assert not obs.enabled()
    with obs.collecting(capacity=8) as reg:
        assert obs.enabled()
        assert obs.timeline() is not None
        assert obs.cache_token() == "+obs-v1"
        obs.metrics("x").counter("c").inc()
        assert reg.snapshot()["x.c"]["value"] == 1
    assert not obs.enabled()
    assert obs.timeline() is None
    assert obs.registry().snapshot() == {}


# ------------------------------------------------------------ kernel probe
def test_kernel_probe_counts_events_and_cancellations():
    with obs.collecting() as reg:
        sim = Simulator()
        assert obs.attach_kernel_probe(sim) is not None
        hits = []
        for t in range(10):
            sim.schedule(t, hits.append, (t,))
        ev = sim.schedule_cancellable(99, hits.append, (99,))
        sim.schedule(50, ev.cancel)  # cancelled mid-run -> probe sees it
        sim.run()
        snap = reg.snapshot()
    assert len(hits) == 10
    assert snap["kernel.events_fired"]["value"] == sim.event_count
    assert snap["kernel.events_cancelled"]["value"] == 1
    assert snap["kernel.heap_high_water"]["value"] >= 1
    assert snap["kernel.run_wall_s"]["count"] >= 1


# ----------------------------------------------------- sweep merge + cache
TASKS = [task("tests.test_obs:obs_task", n) for n in (2, 3, 5, 7, 11)]


def _run_sweep(jobs: int):
    was = obs.enabled()
    obs.enable(True)
    try:
        with obs.use_registry(Registry()):
            runner = SweepRunner(workers=jobs)
            results = runner.run(list(TASKS))
            return results, runner.last_metrics
    finally:
        obs.enable(was)


def test_sweep_merged_metrics_independent_of_worker_count():
    r1, m1 = _run_sweep(jobs=1)
    r2, m2 = _run_sweep(jobs=2)
    assert r1 == r2 == [4, 9, 25, 49, 121]
    assert m1 == m2
    assert m1["task.calls"]["value"] == 5
    assert m1["task.n_total"]["value"] == 2 + 3 + 5 + 7 + 11
    assert m1["task.n_max"]["value"] == 11.0
    assert m1["task.n"]["count"] == 5


def test_sweep_merges_into_ambient_registry():
    with obs.collecting() as reg:
        SweepRunner(workers=1).run([task("tests.test_obs:obs_task", 4)])
        assert reg.snapshot()["task.calls"]["value"] == 1


def test_cache_salt_keeps_obs_runs_separate(tmp_path):
    cache = tmp_path / "cache"
    markers = tmp_path / "markers"
    runner = SweepRunner(workers=1, cache_dir=cache)
    t = [task("tests.test_obs:marker_task", 1, str(markers))]

    assert not obs.enabled()
    assert runner.run(list(t)) == [2]
    assert runner.last_stats.executed == 1
    assert runner.last_metrics is None

    # Enabling metrics must NOT reuse the metrics-less cached blob.
    with obs.collecting():
        assert runner.run(list(t)) == [2]
        assert runner.last_stats.executed == 1
        assert runner.last_metrics["marker.runs"]["value"] == 1

        # ... but a second enabled run hits the obs-aware cache entry and
        # still reproduces the identical merged metrics from the blob.
        assert runner.run(list(t)) == [2]
        assert runner.last_stats.cached == 1
        assert runner.last_metrics["marker.runs"]["value"] == 1

    # Back to disabled: the original cache entry is still valid.
    assert runner.run(list(t)) == [2]
    assert runner.last_stats.cached == 1
    assert runner.last_metrics is None
    assert len(list(markers.iterdir())) == 2
