"""Experiment-driver tests (small configs so the whole file stays fast)."""

from __future__ import annotations

import pytest

from repro.config import (
    CacheConfig,
    ExperimentConfig,
    NocConfig,
    OnocConfig,
    SystemConfig,
)
from repro.harness import (
    ablation_dep_fraction,
    ablation_network_mismatch,
    accuracy_experiment,
    case_study,
    convergence_experiment,
    format_table,
    load_latency_sweep,
    make_electrical,
    make_optical,
    power_experiment,
    run_execution_driven,
    simtime_experiment,
)
from repro.noc import ElectricalNetwork


@pytest.fixture(scope="module")
def exp():
    return ExperimentConfig(
        system=SystemConfig(
            num_cores=4,
            l1=CacheConfig(size_bytes=1024, assoc=2, line_bytes=64, hit_latency=1),
            l2_slice=CacheConfig(size_bytes=4096, assoc=4, line_bytes=64, hit_latency=4),
            mem_latency=30, num_mem_ctrls=2,
        ),
        noc=NocConfig(width=2, height=2),
        onoc=OnocConfig(num_nodes=4, num_wavelengths=16),
        seed=5,
    )


def test_run_execution_driven_targets(exp):
    res_e, trace_e, net_e = run_execution_driven(exp, "lu", "electrical")
    res_o, trace_o, net_o = run_execution_driven(exp, "lu", "optical")
    assert res_e.exec_time_cycles > 0 and res_o.exec_time_cycles > 0
    assert trace_e is not None and trace_o is not None
    with pytest.raises(ValueError, match="target"):
        run_execution_driven(exp, "lu", "hybrid")


def test_run_execution_driven_no_capture(exp):
    _, trace, _ = run_execution_driven(exp, "lu", "electrical", capture=False)
    assert trace is None


def test_accuracy_experiment_shape(exp):
    row = accuracy_experiment(exp, "randshare")
    assert row.workload == "randshare"
    assert row.ref_exec_time > 0
    assert row.self_correcting.exec_time_error_pct <= row.naive.exec_time_error_pct
    assert row.extra["trace_messages"] > 0


def test_simtime_experiment_shape(exp):
    row = simtime_experiment(exp, "stencil")
    assert row.exec_driven_s > 0
    assert row.naive_replay_s > 0
    assert row.self_correcting_s > 0
    assert row.replay_speedup > 0


def test_case_study_shape(exp):
    row = case_study(exp, "fft")
    assert row.exec_electrical > 0 and row.exec_optical > 0
    assert row.speedup == pytest.approx(row.exec_electrical / row.exec_optical)
    assert row.messages > 0


def test_power_experiment_shape(exp):
    r_e, r_o = power_experiment(exp, "fft")
    assert r_e.total_energy_uj > 0
    assert r_o.total_energy_uj > 0
    assert "laser" in r_o.static_mw


def test_convergence_experiment(exp):
    history, ref = convergence_experiment(exp, "randshare", max_iterations=4)
    assert 1 <= len(history) <= 4
    assert ref > 0


def test_ablation_dep_fraction(exp):
    rows = ablation_dep_fraction(exp, "randshare", fractions=[1.0, 0.0])
    assert len(rows) == 2
    full_err = rows[0][1].exec_time_error_pct
    none_err = rows[1][1].exec_time_error_pct
    assert full_err < none_err


def test_ablation_network_mismatch(exp):
    rows = ablation_network_mismatch(exp, "randshare",
                                     wavelength_counts=[4, 64])
    assert len(rows) == 2
    for _, naive_rep, sc_rep in rows:
        assert sc_rep.exec_time_error_pct <= naive_rep.exec_time_error_pct + 1.0


def test_load_latency_sweep_stops_at_saturation(exp):
    pts = load_latency_sweep(
        lambda sim: ElectricalNetwork(sim, exp.noc),
        "uniform", rates=[0.05, 0.9, 0.95],
        warmup=200, measure=1000,
    )
    # must not continue past the first saturated point
    assert all(not p.saturated for p in pts[:-1])
    assert len(pts) <= 3


def test_factories(exp):
    sim, net = make_electrical(exp.noc, 1)
    assert net.num_nodes == 4
    sim, net = make_optical(exp.onoc, 1)
    assert net.num_nodes == 4


def test_format_table():
    rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": 0.125}]
    text = format_table(rows, title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "b" in lines[1]
    assert len(lines) == 5
    assert format_table([]) == "(empty)"
