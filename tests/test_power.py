"""Energy-model tests."""

from __future__ import annotations

import pytest

from repro.config import NocConfig, OnocConfig
from repro.engine import Simulator
from repro.net import Message
from repro.noc import ElectricalNetwork
from repro.onoc import build_optical_network
from repro.power import (
    ElectricalEnergyConfig,
    EnergyReport,
    electrical_energy_report,
    optical_energy_report,
)


def run_elec(n_msgs=50, cfg=None):
    sim = Simulator(seed=1)
    net = ElectricalNetwork(sim, cfg or NocConfig())
    for i in range(n_msgs):
        s, d = i % 16, (i * 7 + 3) % 16
        if s != d:
            sim.schedule(i, net.send, (Message(s, d, 64),))
    sim.run()
    return net, sim.now


def run_opt(topology="crossbar", n_msgs=50):
    sim = Simulator(seed=1)
    nodes = 16
    net = build_optical_network(sim, OnocConfig(topology=topology,
                                                num_nodes=nodes))
    for i in range(n_msgs):
        s, d = i % nodes, (i * 7 + 3) % nodes
        if s != d:
            sim.schedule(i, net.send, (Message(s, d, 64),))
    sim.run()
    return net, sim.now


# ------------------------------------------------------------ EnergyReport
def test_report_arithmetic():
    r = EnergyReport("x", duration_cycles=2000, clock_ghz=2.0,
                     static_mw={"a": 10.0}, dynamic_pj={"b": 500.0})
    assert r.duration_ns == 1000.0
    assert r.static_energy_pj == 10_000.0
    assert r.total_energy_uj == pytest.approx(10_500e-6)
    assert r.avg_power_mw == pytest.approx(10.5)


def test_report_zero_duration():
    r = EnergyReport("x", duration_cycles=0, clock_ghz=2.0)
    assert r.avg_power_mw == 0.0


def test_report_validation():
    with pytest.raises(ValueError):
        EnergyReport("x", duration_cycles=-1, clock_ghz=2.0)
    with pytest.raises(ValueError):
        EnergyReport("x", duration_cycles=1, clock_ghz=0.0)


def test_energy_config_validation():
    with pytest.raises(ValueError):
        ElectricalEnergyConfig(link_pj=-1)


# --------------------------------------------------------------- electrical
def test_electrical_dynamic_scales_with_traffic():
    net_lo, t_lo = run_elec(10)
    net_hi, t_hi = run_elec(200)
    r_lo = electrical_energy_report(net_lo, t_lo)
    r_hi = electrical_energy_report(net_hi, t_hi)
    assert r_hi.total_dynamic_pj > r_lo.total_dynamic_pj


def test_electrical_static_independent_of_traffic():
    net_lo, t = run_elec(10)
    net_hi, _ = run_elec(200)
    r_lo = electrical_energy_report(net_lo, t)
    r_hi = electrical_energy_report(net_hi, t)
    assert r_lo.total_static_mw == r_hi.total_static_mw


def test_electrical_zero_traffic_zero_dynamic():
    sim = Simulator(seed=1)
    net = ElectricalNetwork(sim, NocConfig())
    r = electrical_energy_report(net, 1000)
    assert r.total_dynamic_pj == 0.0
    assert r.total_static_mw > 0.0


def test_electrical_components_present():
    net, t = run_elec(50)
    r = electrical_energy_report(net, t)
    assert set(r.dynamic_pj) == {"buffers", "crossbar", "arbitration", "links"}
    assert all(v > 0 for v in r.dynamic_pj.values())


# ----------------------------------------------------------------- optical
def test_optical_crossbar_report():
    net, t = run_opt("crossbar")
    r = optical_energy_report(net, t)
    assert r.static_mw["laser"] > 0
    assert r.static_mw["ring_tuning"] > 0
    assert r.dynamic_pj["modulation"] > 0
    assert r.dynamic_pj["control_plane"] == 0.0


def test_optical_circuit_mesh_counts_control_plane():
    net, t = run_opt("circuit_mesh")
    r = optical_energy_report(net, t)
    assert r.dynamic_pj["control_plane"] > 0


def test_optical_static_dominates_at_low_load():
    """The known ONOC energy-proportionality problem: lasers + tuning burn
    power regardless of traffic."""
    net, t = run_opt("crossbar", n_msgs=5)
    r = optical_energy_report(net, t)
    assert r.static_energy_pj > r.total_dynamic_pj


def test_optical_modulation_scales_with_bits():
    net_lo, t = run_opt("crossbar", n_msgs=10)
    net_hi, _ = run_opt("crossbar", n_msgs=200)
    r_lo = optical_energy_report(net_lo, t)
    r_hi = optical_energy_report(net_hi, t)
    assert r_hi.dynamic_pj["modulation"] > r_lo.dynamic_pj["modulation"]


def test_as_row_shape():
    net, t = run_elec(20)
    row = electrical_energy_report(net, t).as_row()
    assert set(row) == {"network", "static_mw", "dynamic_pj", "total_uj", "avg_mw"}
