"""Event vs generational agreement on synthetic traces (satellite 2).

The engine-equivalence contract (docs/TRACE_FORMAT.md) was pinned on the
captured golden corpus — 64 cores, fixed workloads.  The synthetic
generator is what takes the simulator beyond that corpus, so this file
re-pins the contract on *generated* traces at 64 and 1024 nodes across
all four optical backends, via the same ``repro.validate.engines``
scoring the golden differential uses.

The contract's domain matters: ``circuit_mesh``'s generational model is
the documented contention-free closed form, so its cells use
light-contention profiles (few chains, long gaps) where the closed form
is the right answer.  The heavy-contention regime is covered too — there
the *counts* must still match exactly (bookkeeping has no scheduling
freedom), even though exec estimates legitimately diverge on the mesh.
"""

from __future__ import annotations

import pytest

from repro.config import (
    ONOC_TOPOLOGIES,
    TRACE_NAIVE,
    TRACE_SELF_CORRECTING,
    TraceConfig,
)
from repro.synth import default_profile, generate, synth_onoc
from repro.validate.engines import compare_engines

NODE_COUNTS = (64, 1024)


def _light_profile(topology: str, nodes: int):
    """A profile inside the equivalence contract's domain for ``topology``.

    The mesh needs genuinely sparse circuits (its generational model
    ignores segment contention between overlapping setups); the FIFO
    backends tolerate moderate load.
    """
    if topology == "circuit_mesh":
        if nodes >= 1024:
            return default_profile(nodes, 1200, chains=4, gap_mean=200.0,
                                   gap_max=800, fanout_prob=0.1,
                                   root_spread=2000)
        return default_profile(nodes, 1500, chains=4, gap_mean=60.0,
                               gap_max=240, fanout_prob=0.1)
    return default_profile(nodes, 1500, chains=6, gap_mean=80.0,
                           gap_max=320, fanout_prob=0.1)


@pytest.fixture(scope="module")
def light_traces():
    cache = {}

    def get(topology: str, nodes: int):
        profile = _light_profile(topology, nodes)
        key = (profile, nodes)
        if key not in cache:
            cache[key] = generate(profile, seed=11)
        return cache[key]

    return get


@pytest.mark.parametrize("nodes", NODE_COUNTS)
@pytest.mark.parametrize("topology", ONOC_TOPOLOGIES)
def test_engines_agree_on_synthetic_traces(light_traces, topology, nodes):
    trace = light_traces(topology, nodes)
    onoc = synth_onoc(topology, nodes)
    for mode in (TRACE_NAIVE, TRACE_SELF_CORRECTING):
        cell = compare_engines(
            trace, onoc, TraceConfig(mode=mode), 7,
            scenario=f"synth/{topology}/{nodes}")
        assert cell.passed, cell.describe()


@pytest.mark.parametrize("topology", ONOC_TOPOLOGIES)
def test_counts_match_even_under_heavy_contention(topology):
    """Bookkeeping counts have no scheduling freedom: they must agree
    exactly even where the mesh's exec estimates legitimately diverge."""
    trace = generate(
        default_profile(64, 2000, chains=128, gap_mean=18.0), seed=11)
    cell = compare_engines(
        trace, synth_onoc(topology, 64),
        TraceConfig(mode=TRACE_SELF_CORRECTING), 7,
        scenario=f"synth-heavy/{topology}")
    assert cell.count_mismatches == ()
    assert cell.violations == ()
    assert cell.converged
