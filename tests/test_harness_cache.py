"""ResultCache and ``repro cache`` CLI tests.

The on-disk result cache is shared by SweepRunner (batch sweeps) and
repro.serve (the resident service); these tests pin the store layout, the
miss-on-damage semantics, and the CLI front end over it.
"""

from __future__ import annotations

import json
import multiprocessing

import pytest

from repro.cli import main
from repro.harness import ResultCache, SweepRunner, task
from repro.harness.parallel import CACHE_SALT
from repro import obs


def add(a: int, b: int) -> int:
    return a + b


def make_task(a: int, b: int):
    return task(add, a, b)


def _race_writer(cache_dir: str, label: str, rounds: int, barrier) -> None:
    """Child-process body: hammer one key with this writer's blobs."""
    cache = ResultCache(cache_dir)
    t = make_task(20, 22)
    key = t.cache_key()
    barrier.wait()
    for i in range(rounds):
        cache.store(key, t, {"writer": label, "round": i})


# ---------------------------------------------------------- ResultCache
def test_store_load_round_trip(tmp_path):
    cache = ResultCache(tmp_path)
    t = make_task(1, 2)
    key = t.cache_key()
    cache.store(key, t, 3)
    blob = cache.load(key)
    assert blob["result"] == 3
    assert blob["fn"] == t.fn
    assert blob["salt"] == CACHE_SALT
    # Entries are self-describing: the stored blob records the full task.
    assert (blob["args"], blob["kwargs"]) == (t.args, t.kwargs)


def test_load_misses(tmp_path):
    cache = ResultCache(tmp_path)
    t = make_task(1, 2)
    key = t.cache_key()
    assert cache.load(key) is None                 # nothing stored
    cache.store(key, t, 3)

    entry = cache.path_for(key)
    entry.write_text("{ torn write")
    assert cache.load(key) is None                 # corrupt JSON: miss

    blob = {"key": "someone-else", "fn": t.fn, "args": t.args,
            "kwargs": t.kwargs, "salt": CACHE_SALT, "result": 3}
    entry.write_text(json.dumps(blob))
    assert cache.load(key) is None                 # key mismatch: miss


def test_store_is_atomic_no_tmp_left_behind(tmp_path):
    cache = ResultCache(tmp_path)
    t = make_task(4, 4)
    cache.store(t.cache_key(), t, 8)
    assert not list(tmp_path.glob("*.tmp"))


def test_info_and_clear(tmp_path):
    cache = ResultCache(tmp_path / "fresh")
    assert cache.info()["entries"] == 0            # missing dir: empty
    assert cache.clear() == 0
    for x in range(4):
        t = make_task(x, x)
        cache.store(t.cache_key(), t, 2 * x)
    assert cache.info()["entries"] == 4
    assert cache.info()["bytes"] > 0
    assert cache.clear() == 4
    assert cache.info()["entries"] == 0


def test_concurrent_cross_process_writers_converge(tmp_path):
    """Two separate processes racing ``store`` on the same key while this
    process ``load``s concurrently: readers only ever observe a complete,
    self-consistent blob (or a miss before the first publish lands), the
    final state is exactly one valid entry belonging wholly to one writer,
    and no ``.tmp`` intermediates leak.  This is the atomicity contract
    the serve fabric leans on: peer nodes and sweep runners share one
    cache directory with no coordination beyond ``os.replace``."""
    t = make_task(20, 22)
    key = t.cache_key()
    rounds = 150
    ctx = multiprocessing.get_context("spawn")
    barrier = ctx.Barrier(3)             # 2 writers + this process
    writers = [
        ctx.Process(target=_race_writer,
                    args=(str(tmp_path), label, rounds, barrier))
        for label in ("a", "b")
    ]
    for p in writers:
        p.start()
    try:
        cache = ResultCache(tmp_path)
        barrier.wait(timeout=60)
        observed = 0
        while any(p.is_alive() for p in writers):
            blob = cache.load(key)
            if blob is None:             # only legal before the 1st publish
                assert observed == 0
                continue
            # Never a torn read: whatever we see parses, matches the key,
            # and is one writer's blob in its entirety.
            assert blob["key"] == key
            assert blob["result"]["writer"] in ("a", "b")
            assert 0 <= blob["result"]["round"] < rounds
            observed += 1
        for p in writers:
            p.join(timeout=60)
            assert p.exitcode == 0
    finally:
        for p in writers:
            if p.is_alive():
                p.terminate()
                p.join(timeout=10)

    # Converged: exactly one well-formed entry, last write wins whole.
    final = cache.load(key)
    assert final is not None
    assert final["result"] == {"writer": final["result"]["writer"],
                               "round": rounds - 1}
    assert sorted(p.name for p in tmp_path.glob("*")) == [f"{key}.json"]
    assert observed > 0                  # the race actually overlapped


def test_obs_token_partitions_keys(tmp_path):
    """Instrumented results live under different keys than bare ones, so
    toggling obs can never serve a result captured under the other mode."""
    t = make_task(2, 5)
    bare = t.cache_key()
    instrumented = t.cache_key(salt=obs.cache_token())
    assert obs.cache_token() == ""                 # obs off in tests
    obs.enable(True)
    try:
        assert t.cache_key(salt=obs.cache_token()) != bare
    finally:
        obs.enable(False)
    assert instrumented == bare                    # token empty when off


# ------------------------------------------- SweepRunner eviction paths
def test_runner_recovers_after_eviction(tmp_path):
    runner = SweepRunner(workers=1, cache_dir=tmp_path)
    tasks = [make_task(i, 10) for i in range(3)]
    assert runner.run(tasks) == [10, 11, 12]
    assert runner.last_stats.executed == 3

    assert runner.cache.clear() == 3               # evict everything
    assert runner.run(tasks) == [10, 11, 12]       # recomputed, not stale
    assert runner.last_stats.executed == 3
    assert runner.run(tasks) == [10, 11, 12]
    assert runner.last_stats.cached == 3


def test_runner_overwrites_damaged_entry(tmp_path):
    runner = SweepRunner(workers=1, cache_dir=tmp_path)
    t = make_task(7, 8)
    runner.run([t])
    entry = runner.cache.path_for(t.cache_key())
    entry.write_text("not json at all")
    assert runner.run([t]) == [15]
    assert runner.last_stats.executed == 1
    # The damaged entry was replaced with a well-formed one.
    assert json.loads(entry.read_text())["result"] == 15


def test_uncached_runner_has_no_cache(tmp_path):
    runner = SweepRunner(workers=1, cache_dir=None)
    assert runner.cache is None
    assert runner.run([make_task(1, 1)]) == [2]
    assert not list(tmp_path.iterdir())


# -------------------------------------------------------- repro cache CLI
def _cache_cli(capsys, *argv: str) -> str:
    rc = main(["cache", *argv])
    assert rc == 0
    return capsys.readouterr().out


def test_cache_cli_info_empty(tmp_path, capsys):
    out = _cache_cli(capsys, "--dir", str(tmp_path / "none"))
    assert "entries" in out and "0" in out


def test_cache_cli_info_and_clear(tmp_path, capsys):
    runner = SweepRunner(workers=1, cache_dir=tmp_path)
    runner.run([make_task(i, i) for i in range(5)])

    out = _cache_cli(capsys, "--dir", str(tmp_path))
    assert str(tmp_path) in out
    assert "5" in out

    out = _cache_cli(capsys, "--dir", str(tmp_path), "--clear")
    assert "cleared 5" in out
    assert not list(tmp_path.glob("*.json"))

    out = _cache_cli(capsys, "--dir", str(tmp_path), "--clear")
    assert "cleared 0" in out


def test_cache_cli_default_dir_env(tmp_path, capsys, monkeypatch):
    """REPRO_CACHE_DIR steers the CLI's default directory."""
    from repro.harness.parallel import default_cache_dir
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envcache"))
    runner = SweepRunner(workers=1, cache_dir=default_cache_dir())
    runner.run([make_task(3, 9)])
    out = _cache_cli(capsys)
    assert "envcache" in out
    assert "entries   | 1" in out.replace("  ", " ") or " 1 " in out


@pytest.mark.parametrize("flag", ["--clear"])
def test_cache_cli_clear_missing_dir(tmp_path, capsys, flag):
    out = _cache_cli(capsys, "--dir", str(tmp_path / "ghost"), flag)
    assert "cleared 0" in out
