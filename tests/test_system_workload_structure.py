"""Structural workload properties: race freedom, pattern shape.

The trace methodology's accuracy depends on kernels whose *communication
pattern* is network-invariant: within one barrier-delimited phase, no line
written by one core may be touched by another (such races resolve
differently on different networks and change the protocol message set).
The double-buffered kernels must satisfy this exactly; the intentionally
racy ones (radix scatter collisions, randshare/barnes migratory cells) are
exempt and documented as such.
"""

from __future__ import annotations

import pytest

from repro.system import build_workload
from repro.system.ops import OP_BARRIER, OP_LOAD, OP_STORE
from repro.system.workloads.base import LINE_BYTES

RACE_FREE = ("fft", "stencil", "lu", "prodcons", "cholesky")
RACY = ("radix", "randshare", "barnes")


def phase_races(programs) -> list[tuple[int, int]]:
    """(phase, line) pairs where one core stores a line another touches."""
    # Split each program into phases at barrier boundaries; barrier ids are
    # globally ordered, so phase index == number of barriers passed.
    per_phase_stores: dict[int, dict[int, set[int]]] = {}
    per_phase_touch: dict[int, dict[int, set[int]]] = {}
    for core, prog in enumerate(programs):
        phase = 0
        for code, arg in prog:
            if code == OP_BARRIER:
                phase += 1
                continue
            if code not in (OP_LOAD, OP_STORE):
                continue
            line = arg // LINE_BYTES
            per_phase_touch.setdefault(phase, {}).setdefault(
                line, set()).add(core)
            if code == OP_STORE:
                per_phase_stores.setdefault(phase, {}).setdefault(
                    line, set()).add(core)
    races = []
    for phase, stores in per_phase_stores.items():
        touches = per_phase_touch[phase]
        for line, writers in stores.items():
            others = touches[line] - writers
            if others or len(writers) > 1:
                races.append((phase, line))
    return sorted(set(races))


@pytest.mark.parametrize("name", RACE_FREE)
@pytest.mark.parametrize("cores", [4, 16])
def test_race_free_kernels_have_no_phase_races(name, cores):
    programs = build_workload(name, cores, seed=7)
    assert phase_races(programs) == [], name


@pytest.mark.parametrize("name", RACY)
def test_racy_kernels_are_actually_racy(name):
    """The exemption list must stay honest: these kernels do race."""
    programs = build_workload(name, 16, seed=7)
    assert phase_races(programs) != [], name


def test_fft_partner_symmetry():
    """In each fft phase, if core i reads core j's slab, j reads i's."""
    programs = build_workload("fft", 16, seed=7)
    from repro.system.workloads.base import PRIVATE_REGION_LINES

    reads_by_phase: dict[int, dict[int, set[int]]] = {}
    for core, prog in enumerate(programs):
        phase = 0
        for code, arg in prog:
            if code == OP_BARRIER:
                phase += 1
            elif code == OP_LOAD:
                owner = (arg // LINE_BYTES) // PRIVATE_REGION_LINES
                reads_by_phase.setdefault(phase, {}).setdefault(
                    core, set()).add(owner)
    for phase, reads in reads_by_phase.items():
        for core, owners in reads.items():
            for owner in owners:
                if owner != core:
                    assert core in reads.get(owner, set()), (
                        f"phase {phase}: {core} reads {owner} but not vice versa"
                    )


def test_lu_owner_rotates():
    programs = build_workload("lu", 8, seed=7)
    from repro.system.workloads.base import PRIVATE_REGION_LINES

    # Stores from distinct cores must cover several distinct pivot owners.
    storing_cores = set()
    for core, prog in enumerate(programs):
        if any(code == OP_STORE for code, _ in prog):
            storing_cores.add(core)
    assert len(storing_cores) == 8


def test_cholesky_every_core_participates():
    programs = build_workload("cholesky", 16, seed=7)
    for core, prog in enumerate(programs):
        mem_ops = sum(1 for code, _ in prog if code in (OP_LOAD, OP_STORE))
        assert mem_ops > 0, f"core {core} idle"


def test_stencil_reads_previous_phase_writes():
    """Double-buffering: what a phase reads equals what the previous phase
    wrote (modulo core ownership)."""
    programs = build_workload("stencil", 16, seed=7)
    from repro.system.workloads.base import PRIVATE_REGION_LINES

    writes_by_phase: dict[int, set[int]] = {}
    reads_by_phase: dict[int, set[int]] = {}
    for prog in programs:
        phase = 0
        for code, arg in prog:
            if code == OP_BARRIER:
                phase += 1
            else:
                line = arg // LINE_BYTES
                offset = line % PRIVATE_REGION_LINES
                if code == OP_STORE:
                    writes_by_phase.setdefault(phase, set()).add(offset)
                elif code == OP_LOAD:
                    reads_by_phase.setdefault(phase, set()).add(offset)
    for phase in sorted(reads_by_phase):
        if phase == 0:
            continue
        prev_writes = writes_by_phase.get(phase - 1, set())
        assert reads_by_phase[phase] <= prev_writes, f"phase {phase}"
