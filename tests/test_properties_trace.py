"""Property-based tests of the trace model on *generated* dependency DAGs.

Hypothesis builds random-but-valid traces (arbitrary fan-out DAGs with
consistent gaps and latencies); the replayers must uphold their contracts on
every one of them — full coverage, causal gap alignment, JSON round-trip,
and profile consistency.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.config import OnocConfig
from repro.core import (
    NaiveReplayer,
    SelfCorrectingReplayer,
    Trace,
    TraceRecord,
    profile_trace,
)
from repro.engine import Simulator
from repro.onoc import build_optical_network

NODES = 8


@st.composite
def traces(draw) -> Trace:
    """Random valid dependency-annotated trace on an 8-node machine."""
    n = draw(st.integers(1, 40))
    records: list[TraceRecord] = []
    for i in range(n):
        src = draw(st.integers(0, NODES - 1))
        dst = draw(st.integers(0, NODES - 1))
        if dst == src:
            dst = (src + 1) % NODES
        size = draw(st.integers(1, 256))
        if records and draw(st.booleans()):
            cause = records[draw(st.integers(0, len(records) - 1))]
            gap = draw(st.integers(0, 50))
            t_inject = cause.t_deliver + gap
            cause_id = cause.msg_id
        else:
            t_inject = draw(st.integers(0, 200))
            gap = t_inject
            cause_id = -1
        latency = draw(st.integers(1, 60))
        records.append(TraceRecord(
            msg_id=i, key=(src, dst, "synthetic", i, 0), src=src, dst=dst,
            size_bytes=size, kind="synthetic", t_inject=t_inject,
            t_deliver=t_inject + latency, cause_id=cause_id, gap=gap,
        ))
    exec_time = max(r.t_deliver for r in records)
    trace = Trace(records=records, end_markers=[], exec_time=exec_time)
    trace.validate()
    return trace


def _replay(trace: Trace, replayer_cls):
    sim = Simulator(seed=1)
    net = build_optical_network(
        sim, OnocConfig(num_nodes=NODES, num_wavelengths=16))
    return replayer_cls(trace, sim, net).run()


@given(traces())
@settings(max_examples=60, deadline=None)
def test_naive_replays_every_record_at_its_timestamp(trace):
    result = _replay(trace, NaiveReplayer)
    assert result.messages_unreplayed == 0
    for r in trace.records:
        assert result.injections[r.msg_id] == r.t_inject
        assert result.deliveries[r.msg_id] > result.injections[r.msg_id]


@given(traces())
@settings(max_examples=60, deadline=None)
def test_self_correcting_gap_alignment_holds(trace):
    result = _replay(trace, SelfCorrectingReplayer)
    assert result.messages_unreplayed == 0
    for r in trace.records:
        if r.cause_id == -1:
            assert result.injections[r.msg_id] == r.gap
        else:
            assert (result.injections[r.msg_id]
                    == result.deliveries[r.cause_id] + r.gap)


@given(traces())
@settings(max_examples=60, deadline=None)
def test_replay_deliveries_respect_causality(trace):
    result = _replay(trace, SelfCorrectingReplayer)
    for r in trace.records:
        if r.cause_id != -1:
            assert (result.deliveries[r.cause_id]
                    <= result.injections[r.msg_id])


@given(traces())
@settings(max_examples=40, deadline=None)
def test_json_roundtrip_random_traces(trace):
    again = Trace.from_json(trace.to_json())
    assert again.records == trace.records
    assert again.exec_time == trace.exec_time


@given(traces())
@settings(max_examples=40, deadline=None)
def test_profile_consistency_random_traces(trace):
    prof = profile_trace(trace)
    assert prof.messages == len(trace)
    assert prof.roots == len(trace.roots())
    assert 1 <= prof.dependency_depth <= len(trace)
    assert prof.dependency_depth == trace.dependency_depth()
    assert prof.bytes_total == trace.bytes_total()
    assert prof.critical_gap_sum >= 0


@given(traces(), st.floats(0.0, 1.0))
@settings(max_examples=40, deadline=None)
def test_dep_ablation_always_total(trace, frac):
    sim = Simulator(seed=1)
    net = build_optical_network(
        sim, OnocConfig(num_nodes=NODES, num_wavelengths=16))
    result = SelfCorrectingReplayer(trace, sim, net,
                                    keep_dep_fraction=frac).run()
    assert result.messages_unreplayed == 0
