"""Property-based fuzzing of the full coherence system.

Hypothesis generates arbitrary small programs (random loads/stores/computes
over a small line pool, with a consistent barrier skeleton) and the machine
must always (a) run to completion — no protocol deadlock — and (b) end in a
directory/L1-consistent state.  This is the test that hunts protocol races
the hand-written scenarios didn't think of.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.config import CacheConfig, NocConfig, OnocConfig, SystemConfig
from repro.engine import Simulator
from repro.noc import ElectricalNetwork
from repro.onoc import build_optical_network
from repro.system import FullSystem
from repro.system.ops import OP_BARRIER, OP_COMPUTE, OP_LOAD, OP_STORE

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).parent))
from test_system_protocol import check_coherence_invariant  # noqa: E402

CORES = 4
LINE_POOL = 24   # few lines -> heavy sharing and eviction pressure
LINE = 64


def tiny_syscfg() -> SystemConfig:
    return SystemConfig(
        num_cores=CORES,
        # Tiny L1: 2 sets x 2 ways -> constant evictions and writebacks.
        l1=CacheConfig(size_bytes=256, assoc=2, line_bytes=64, hit_latency=1),
        l2_slice=CacheConfig(size_bytes=1024, assoc=2, line_bytes=64,
                             hit_latency=2),
        mem_latency=20,
        num_mem_ctrls=2,
    )


op_st = st.one_of(
    st.tuples(st.just(OP_COMPUTE), st.integers(0, 15)),
    st.tuples(st.just(OP_LOAD),
              st.integers(0, LINE_POOL - 1).map(lambda k: k * LINE)),
    st.tuples(st.just(OP_STORE),
              st.integers(0, LINE_POOL - 1).map(lambda k: k * LINE)),
)


@st.composite
def programs_strategy(draw):
    """CORES programs with an identical barrier skeleton."""
    n_barriers = draw(st.integers(0, 3))
    progs = []
    for _ in range(CORES):
        chunks = [
            draw(st.lists(op_st, max_size=12)) for _ in range(n_barriers + 1)
        ]
        prog = []
        for b, chunk in enumerate(chunks):
            prog.extend(chunk)
            if b < n_barriers:
                prog.append((OP_BARRIER, b))
        progs.append(prog)
    return progs


def run_on(progs, make_net, seed):
    sim = Simulator(seed=seed)
    net = make_net(sim)
    system = FullSystem(sim, tiny_syscfg(), net, progs)
    res = system.run(max_cycles=3_000_000)
    check_coherence_invariant(system)
    return res


@given(programs_strategy(), st.integers(0, 4))
@settings(max_examples=50, deadline=None)
def test_random_programs_complete_on_electrical(progs, seed):
    res = run_on(progs, lambda sim: ElectricalNetwork(
        sim, NocConfig(width=2, height=2)), seed)
    assert len(res.per_core_finish) == CORES


@given(programs_strategy(), st.integers(0, 4))
@settings(max_examples=30, deadline=None)
def test_random_programs_complete_on_optical(progs, seed):
    res = run_on(progs, lambda sim: build_optical_network(
        sim, OnocConfig(num_nodes=CORES, num_wavelengths=16)), seed)
    assert len(res.per_core_finish) == CORES


@given(programs_strategy())
@settings(max_examples=20, deadline=None)
def test_same_programs_deterministic(progs):
    a = run_on(progs, lambda sim: ElectricalNetwork(
        sim, NocConfig(width=2, height=2)), seed=1)
    b = run_on(progs, lambda sim: ElectricalNetwork(
        sim, NocConfig(width=2, height=2)), seed=1)
    assert a.per_core_finish == b.per_core_finish
    assert a.messages == b.messages
