"""CLI tests (direct main() invocation, captured stdout)."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_experiment, main, make_parser


def run_cli(capsys, *argv: str) -> str:
    rc = main(list(argv))
    assert rc == 0
    return capsys.readouterr().out


SMALL = ("--cores", "4", "--seed", "3", "--wavelengths", "16",
         "--scale", "0.5")


def test_info(capsys):
    out = run_cli(capsys, "info", *SMALL)
    assert "4-node crossbar" in out
    assert "2x2 mesh" in out


def test_cores_must_be_square():
    with pytest.raises(SystemExit):
        main(["info", "--cores", "6"])


def test_missing_subcommand_rejected():
    with pytest.raises(SystemExit):
        main([])


def test_capture_writes_valid_trace(tmp_path, capsys):
    out_file = tmp_path / "t.json"
    out = run_cli(capsys, "capture", "--workload", "randshare",
                  "--out", str(out_file), *SMALL)
    assert "captured" in out
    payload = json.loads(out_file.read_text())
    assert payload["records"]
    assert payload["meta"]["workload"] == "randshare"


def test_replay_roundtrip(tmp_path, capsys):
    out_file = tmp_path / "t.json"
    run_cli(capsys, "capture", "--workload", "randshare",
            "--out", str(out_file), *SMALL)
    out = run_cli(capsys, "replay", "--trace", str(out_file),
                  "--target", "crossbar", *SMALL)
    assert "predicted exec time" in out
    assert "0 unreplayed" in out


def test_replay_naive_mode(tmp_path, capsys):
    out_file = tmp_path / "t.json"
    run_cli(capsys, "capture", "--workload", "randshare",
            "--out", str(out_file), *SMALL)
    out = run_cli(capsys, "replay", "--trace", str(out_file),
                  "--mode", "naive", *SMALL)
    assert "mode=naive" in out


def test_accuracy_command(capsys):
    out = run_cli(capsys, "accuracy", "--workload", "randshare", *SMALL)
    assert "self_correcting" in out
    assert "exec_err_%" in out


def test_casestudy_command(capsys):
    out = run_cli(capsys, "casestudy", "--workload", "prodcons", *SMALL)
    assert "speedup_x" in out


def test_sweep_command(capsys):
    out = run_cli(capsys, "sweep", "--network", "crossbar",
                  "--rates", "0.05", *SMALL)
    assert "avg_latency" in out


def test_analyze_command(tmp_path, capsys):
    out_file = tmp_path / "t.json"
    run_cli(capsys, "capture", "--workload", "randshare",
            "--out", str(out_file), *SMALL)
    out = run_cli(capsys, "analyze", "--trace", str(out_file))
    assert "dependency depth" in out
    assert "Line sharing" in out
    assert "workload=randshare" in out


# --------------------------------------------------------- trace utilities
def _capture_small(tmp_path, capsys):
    out_file = tmp_path / "t.json"
    run_cli(capsys, "capture", "--workload", "randshare",
            "--out", str(out_file), *SMALL)
    return out_file


def test_trace_convert_json_to_binary_and_back(tmp_path, capsys):
    from repro.core import Trace, tracebin

    src = _capture_small(tmp_path, capsys)
    out = run_cli(capsys, "trace", "convert", str(src))
    assert "-> " in out and ".rtrc" in out
    rtrc = src.with_suffix(".rtrc")
    assert tracebin.is_binary_trace(rtrc)

    back = tmp_path / "back.json"
    out = run_cli(capsys, "trace", "convert", str(rtrc),
                  "--to", "json", "--out", str(back))
    assert "json" in out
    # Lossless through the CLI: canonical JSON matches the original capture.
    assert (Trace.from_json(back.read_text()).to_json()
            == Trace.from_json(src.read_text()).to_json())


def test_trace_info_both_containers(tmp_path, capsys):
    src = _capture_small(tmp_path, capsys)
    run_cli(capsys, "trace", "convert", str(src))

    info_json = run_cli(capsys, "trace", "info", str(src))
    info_bin = run_cli(capsys, "trace", "info", str(src.with_suffix(".rtrc")))
    for out in (info_json, info_bin):
        assert "records" in out
        assert "meta.workload" in out and "randshare" in out
    assert "json" in info_json
    assert "binary" in info_bin


def test_replay_generational_engine_on_binary_trace(tmp_path, capsys):
    src = _capture_small(tmp_path, capsys)
    run_cli(capsys, "trace", "convert", str(src))
    out = run_cli(capsys, "replay",
                  "--trace", str(src.with_suffix(".rtrc")),
                  "--target", "crossbar", "--engine", "generational", *SMALL)
    assert "predicted exec time" in out
    assert "0 unreplayed" in out


def test_build_experiment_respects_flags():
    args = make_parser().parse_args(
        ["info", "--cores", "16", "--seed", "11", "--wavelengths", "32"])
    exp = build_experiment(args)
    assert exp.system.num_cores == 16
    assert exp.noc.width == exp.noc.height == 4
    assert exp.onoc.num_wavelengths == 32
    assert exp.seed == 11


# ------------------------------------------------------------- observability
def test_metrics_flag_prints_metrics_block(capsys):
    out = run_cli(capsys, "sweep", "--network", "crossbar",
                  "--rates", "0.05", "--metrics", *SMALL)
    assert "== metrics ==" in out
    assert "kernel.events_fired" in out
    assert "net.crossbar.injected" in out
    # The flag is per-invocation: instrumentation is off again afterwards.
    from repro import obs
    assert not obs.enabled()


def test_metrics_out_roundtrips_through_metrics_command(tmp_path, capsys):
    metrics_file = tmp_path / "m.json"
    run_cli(capsys, "casestudy", "--workload", "prodcons", "--metrics",
            "--metrics-out", str(metrics_file), *SMALL)
    payload = json.loads(metrics_file.read_text())
    assert payload["format"] == "repro-metrics-v1"
    out = run_cli(capsys, "metrics", str(metrics_file))
    assert "== metrics" in out
    assert "kernel.events_fired" in out


def test_trace_out_writes_chrome_trace(tmp_path, capsys):
    trace_file = tmp_path / "trace.json"
    out = run_cli(capsys, "casestudy", "--workload", "prodcons",
                  "--trace-out", str(trace_file), *SMALL)
    assert "wrote chrome trace" in out
    doc = json.loads(trace_file.read_text())
    events = doc["traceEvents"]
    assert events
    assert any(e.get("ph") == "i" for e in events)
    from repro import obs
    assert obs.timeline() is None          # tracer torn down after main()
