"""Report-generator tests."""

from __future__ import annotations

import pytest

from repro.config import (
    CacheConfig,
    ExperimentConfig,
    NocConfig,
    OnocConfig,
    SystemConfig,
)
from repro.harness import generate_report


@pytest.fixture(scope="module")
def exp():
    return ExperimentConfig(
        system=SystemConfig(
            num_cores=4,
            l1=CacheConfig(size_bytes=1024, assoc=2, line_bytes=64, hit_latency=1),
            l2_slice=CacheConfig(size_bytes=4096, assoc=4, line_bytes=64, hit_latency=4),
            mem_latency=30, num_mem_ctrls=2,
        ),
        noc=NocConfig(width=2, height=2),
        onoc=OnocConfig(num_nodes=4, num_wavelengths=16),
        seed=5,
    )


@pytest.fixture(scope="module")
def report_text(exp):
    return generate_report(exp, ["randshare"], scale=0.5)


def test_report_has_all_sections(report_text):
    for heading in ("# Self-Correction Trace Model",
                    "## Case study",
                    "## Trace-model accuracy",
                    "## Simulation wall-clock time",
                    "## Energy",
                    "## Area"):
        assert heading in report_text


def test_report_tables_are_markdown(report_text):
    lines = report_text.splitlines()
    headers = [ln for ln in lines if ln.startswith("| workload")]
    assert headers, "markdown table headers missing"
    for h in headers:
        idx = lines.index(h)
        assert set(lines[idx + 1].replace("|", "").replace("-", "")) <= {""} or \
            lines[idx + 1].startswith("|---")


def test_report_mentions_configuration(report_text):
    assert "4 cores" in report_text
    assert "2x2 mesh" in report_text
    assert "seed 5" in report_text


def test_report_requires_workloads(exp):
    with pytest.raises(ValueError, match="workload"):
        generate_report(exp, [])


def test_report_cli(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "r.md"
    rc = main(["report", "--cores", "4", "--wavelengths", "16",
               "--seed", "3", "--scale", "0.5",
               "--workloads", "randshare", "--out", str(out)])
    assert rc == 0
    text = out.read_text()
    assert "## Trace-model accuracy" in text
