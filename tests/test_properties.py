"""Property-based tests (hypothesis) on core data structures and invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import NocConfig
from repro.engine import EventQueue, Simulator
from repro.noc.routing import productive_ports, route_port
from repro.noc.topology import LOCAL, Topology
from repro.stats import Histogram, OnlineStats
from repro.stats.error import mean_absolute_percentage_error


# ------------------------------------------------------------- event queue
@given(st.lists(st.tuples(st.integers(0, 10_000), st.integers(0, 5)),
                max_size=200))
def test_event_queue_pops_sorted(items):
    q = EventQueue()
    for t, prio in items:
        q.push(t, lambda: None, priority=prio)
    popped = []
    while (entry := q.pop()) is not None:
        popped.append(entry[:3])        # (time, priority, seq)
    assert popped == sorted(popped)
    assert len(popped) == len(items)


@given(st.lists(st.integers(0, 1000), min_size=1, max_size=100),
       st.data())
def test_event_queue_cancellation_preserves_rest(times, data):
    q = EventQueue()
    evs = [q.push_cancellable(t, lambda: None) for t in times]
    to_cancel = data.draw(st.sets(st.integers(0, len(evs) - 1),
                                  max_size=len(evs)))
    for i in to_cancel:
        q.cancel(evs[i])
    popped = 0
    while q.pop() is not None:
        popped += 1
    assert popped == len(evs) - len(to_cancel)


@given(st.lists(st.tuples(st.integers(0, 10_000), st.integers(0, 5)),
                max_size=200))
def test_event_queue_push_many_matches_push(items):
    """Bulk scheduling orders identically to one-by-one scheduling."""
    bulk = EventQueue()
    bulk.push_many(((t, (lambda: None), ()) for t, _ in items), priority=0)
    flat = EventQueue()
    for t, _ in items:
        flat.push(t, lambda: None, priority=0)
    a = [e[:3] for e in iter(lambda: bulk.pop(), None)]
    b = [e[:3] for e in iter(lambda: flat.pop(), None)]
    assert a == b


# ------------------------------------------------------------ online stats
@given(st.lists(st.floats(-1e6, 1e6, allow_nan=False), min_size=1,
                max_size=500))
def test_online_stats_agrees_with_numpy(xs):
    s = OnlineStats()
    for x in xs:
        s.add(x)
    arr = np.asarray(xs)
    assert s.mean == pytest.approx(arr.mean(), rel=1e-9, abs=1e-6)
    if len(xs) > 1:
        assert s.variance == pytest.approx(arr.var(ddof=1), rel=1e-6, abs=1e-4)
    assert s.min == arr.min() and s.max == arr.max()


@given(st.lists(st.floats(-1e6, 1e6, allow_nan=False), max_size=200),
       st.lists(st.floats(-1e6, 1e6, allow_nan=False), max_size=200))
def test_online_stats_merge_equals_concat(a_xs, b_xs):
    a, b, whole = OnlineStats(), OnlineStats(), OnlineStats()
    for x in a_xs:
        a.add(x)
        whole.add(x)
    for x in b_xs:
        b.add(x)
        whole.add(x)
    a.merge(b)
    assert a.count == whole.count
    assert a.mean == pytest.approx(whole.mean, rel=1e-9, abs=1e-6)
    assert a.variance == pytest.approx(whole.variance, rel=1e-6, abs=1e-4)


# -------------------------------------------------------------- histogram
@given(st.lists(st.integers(0, 5000), max_size=300),
       st.integers(1, 50), st.integers(1, 64))
def test_histogram_conserves_mass(xs, bin_width, num_bins):
    h = Histogram(bin_width=bin_width, num_bins=num_bins)
    for x in xs:
        h.add(x)
    assert int(h.counts.sum()) + h.overflow == len(xs)


@given(st.lists(st.integers(0, 200), min_size=1, max_size=300))
def test_histogram_percentile_monotone(xs):
    h = Histogram(bin_width=2, num_bins=128)
    h.add_many(xs)
    qs = [h.percentile(q) for q in (10, 50, 90, 99)]
    assert qs == sorted(qs)


# ------------------------------------------------------------ error metric
@given(st.lists(st.floats(1, 1e6), min_size=1, max_size=100))
def test_mape_zero_for_identical(xs):
    assert mean_absolute_percentage_error(xs, xs) == pytest.approx(0.0)


@given(st.lists(st.floats(1, 1e6), min_size=1, max_size=100),
       st.floats(0.01, 3.0))
def test_mape_of_uniform_scaling(xs, k):
    scaled = [x * k for x in xs]
    assert mean_absolute_percentage_error(scaled, xs) == pytest.approx(
        abs(k - 1) * 100, rel=1e-6)


# ----------------------------------------------------------------- routing
@st.composite
def topo_and_pair(draw):
    kind = draw(st.sampled_from(["mesh", "torus", "ring"]))
    if kind == "ring":
        n = draw(st.integers(3, 12))
        cfg = NocConfig(topology="ring", width=n, height=1)
    else:
        w = draw(st.integers(2, 6))
        h = draw(st.integers(2, 6))
        cfg = NocConfig(topology=kind, width=w, height=h)
    t = Topology(cfg)
    s = draw(st.integers(0, t.num_nodes - 1))
    d = draw(st.integers(0, t.num_nodes - 1))
    return t, s, d


@given(topo_and_pair())
@settings(max_examples=200)
def test_route_walk_reaches_destination_minimally(args):
    t, s, d = args
    cur, hops = s, 0
    while cur != d:
        port = route_port(t, "xy", cur, d)
        assert port != LOCAL
        nb = t.neighbor(cur, port)
        assert nb is not None
        cur = nb[0]
        hops += 1
        assert hops <= t.num_nodes * 2, "routing loop"
    assert hops == t.min_hops(s, d)


@given(topo_and_pair())
@settings(max_examples=200)
def test_productive_ports_reduce_distance(args):
    t, s, d = args
    for p in productive_ports(t, s, d):
        nb = t.neighbor(s, p)
        assert nb is not None
        assert t.min_hops(nb[0], d) == t.min_hops(s, d) - 1


# -------------------------------------------------------------- simulator
@given(st.lists(st.integers(0, 1000), min_size=1, max_size=100))
def test_simulator_clock_monotone(times):
    sim = Simulator()
    seen = []
    for t in times:
        sim.schedule(t, lambda: seen.append(sim.now))
    sim.run()
    assert seen == sorted(seen)
    assert sim.now == max(times)
