"""Unit tests for the serve subsystem's pieces: protocol, jobs, pool,
client failure semantics, and the fabric's local data structures (LRU,
membership).

Integration tests (real sockets, real worker processes) live in
``tests/test_serve_service.py``; multi-node fabric tests in
``tests/test_serve_fabric.py``.  Everything here runs in-process — the
client tests use scripted fake servers, not the real service.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.harness import task
from repro.serve import protocol as P
from repro.serve.client import AsyncServeClient, ServerClosed
from repro.serve.jobs import (
    DONE,
    FAILED,
    HISTORY_LIMIT,
    Job,
    JobTable,
    QUEUED,
    RUNNING,
)
from repro.serve.lru import LRUCache
from repro.serve.ops import echo
from repro.serve.peer import Membership, parse_addr
from repro.serve.pool import WorkerPool, _run_guarded
from repro.serve.protocol import RemoteError
from repro.serve.server import SimulationServer


# ------------------------------------------------------------- protocol
def test_frame_round_trip():
    frame = {"op": "submit", "req": 7, "fn": "echo", "args": [1], "kwargs": {}}
    line = P.encode_frame(frame)
    assert line.endswith(b"\n") and b"\n" not in line[:-1]
    assert P.decode_frame(line) == frame


def test_decode_frame_rejects_garbage():
    with pytest.raises(P.ProtocolError):
        P.decode_frame(b"{ not json\n")
    with pytest.raises(P.ProtocolError):
        P.decode_frame(b"[1, 2, 3]\n")           # not an object
    with pytest.raises(P.ProtocolError):
        P.decode_frame(b"\xff\xfe\n")            # not UTF-8
    with pytest.raises(P.ProtocolError):
        P.decode_frame(b"x" * (P.MAX_LINE_BYTES + 1))


def test_submit_frame_optional_fields():
    bare = P.submit_frame(1, "echo", [], {})
    assert "quiet" not in bare and "timeout_s" not in bare
    full = P.submit_frame(1, "echo", [], {}, quiet=True, timeout_s=2.5)
    assert full["quiet"] is True and full["timeout_s"] == 2.5


def test_remote_error_round_trip():
    err = RemoteError(type="ValueError", message="boom", traceback="tb...")
    assert RemoteError.from_dict(err.as_dict()) == err
    assert str(err) == "ValueError: boom"
    # Missing fields default rather than raise (forward compatibility).
    assert RemoteError.from_dict({}).type == "Exception"


# ----------------------------------------------------------------- jobs
def _table_job(table, payload="x"):
    t = task(echo, payload)
    return table.get_or_create(t, t.cache_key(), now_s=1.0)


def test_job_table_single_flight_dedup():
    table = JobTable()
    job, deduped = _table_job(table)
    assert not deduped and job.state == QUEUED and table.depth == 1
    again, deduped2 = _table_job(table)
    assert deduped2 and again is job
    assert job.subscribers == 2 and job.coalesced == 1
    assert table.stats.submitted == 1 and table.stats.dedup_hits == 1
    # A different payload is a different job.
    other, deduped3 = _table_job(table, payload="y")
    assert not deduped3 and other is not job and table.depth == 2


def test_job_table_finish_moves_to_history():
    table = JobTable()
    job, _ = _table_job(table)
    table.finish(job, DONE, now_s=2.0)
    assert table.depth == 0 and list(table.history) == [job]
    assert table.stats.completed == 1
    assert job.elapsed_s == pytest.approx(1.0)
    # Finishing again under a new submit creates a *fresh* job (the old
    # one left the active index).
    job2, deduped = _table_job(table)
    assert not deduped and job2 is not job


def test_job_table_history_is_bounded():
    table = JobTable(history_limit=4)
    for i in range(10):
        job, _ = _table_job(table, payload=i)
        table.finish(job, FAILED, now_s=1.0)
    assert len(table.history) == 4
    assert table.stats.failed == 10
    assert HISTORY_LIMIT == 256                   # wire-documented default


def test_job_listing_active_then_recent():
    table = JobTable()
    a, _ = _table_job(table, "a")
    b, _ = _table_job(table, "b")
    table.finish(a, DONE, now_s=1.0)
    listing = table.listing()
    assert [e["state"] for e in listing] == [QUEUED, DONE]
    assert listing[0]["job"] == b.short_key
    assert set(listing[0]) >= {"id", "fn", "attempts", "subscribers",
                               "coalesced", "cached", "elapsed_s"}


def test_job_event_fanout():
    async def main():
        job = Job(jid=1, key="k" * 64, task=task(echo, 1))
        q1, q2 = job.subscribe(), job.subscribe()
        job.publish({"event": P.EV_STATE, "state": RUNNING})
        job.unsubscribe(q2)
        job.publish({"event": P.EV_DONE})
        assert q1.qsize() == 2 and q2.qsize() == 1
        job.unsubscribe(q2)                       # double-unsubscribe is fine

    asyncio.run(main())


# ----------------------------------------------------------------- pool
def test_pool_rejects_bad_sizing():
    with pytest.raises(ValueError):
        WorkerPool(max_workers=0)
    with pytest.raises(ValueError):
        WorkerPool(max_retries=0)


def test_run_guarded_success_shape():
    t = task(echo, {"deep": [1, 2]})
    out = _run_guarded(t.fn, t.args, t.kwargs, with_obs=False)
    assert out["ok"] is True
    assert out["result"] == {"deep": [1, 2]}
    json.dumps(out)                               # wire-serializable


def test_run_guarded_failure_shape():
    out = _run_guarded("repro.serve.ops:resolve_config", [],
                       {"cores": 3}, with_obs=False)
    assert out["ok"] is False
    err = out["error"]
    assert err["type"] == "ValueError"
    assert "perfect square" in err["message"]
    assert "Traceback (most recent call last)" in err["traceback"]
    assert "_experiment_from_params" in err["traceback"]  # original frames


# ----------------------------------------------- request canonicalization
def test_canonical_task_matches_local_key():
    """A wire request hashes to the same content key as the equivalent
    local SweepTask — the property dedup and cache sharing rest on."""
    server = SimulationServer(port=0)
    local = task(echo, "x", sleep_s=0.5)
    from repro.harness import encode_value
    wire = server._canonical_task({
        "fn": "echo",
        "args": encode_value(("x",)),
        "kwargs": encode_value({"sleep_s": 0.5}),
    })
    assert wire.cache_key() == local.cache_key()
    # Plain JSON spellings (list args, no codec tags) canonicalize too.
    plain = server._canonical_task({
        "fn": "echo", "args": ["x"], "kwargs": {"sleep_s": 0.5}})
    assert plain.cache_key() == local.cache_key()
    # The full dotted ref is accepted when it is a registered value.
    dotted = server._canonical_task({
        "fn": "repro.serve.ops:echo",
        "args": ["x"], "kwargs": {"sleep_s": 0.5}})
    assert dotted.cache_key() == local.cache_key()


def test_canonical_task_rejects_unknown_ops():
    server = SimulationServer(port=0)
    with pytest.raises(KeyError):
        server._canonical_task({"fn": "os:system", "args": [], "kwargs": {}})
    with pytest.raises(KeyError):
        server._canonical_task({"fn": "nope", "args": [], "kwargs": {}})


# ------------------------------------------ client failure semantics
#
# The retry contract (module docstring of repro.serve.client): a failure
# the server provably never observed — connect refused, or the connection
# dropped before *any* event arrived for the request — is retried with
# backoff.  A drop after any event is NOT retried: the submit opened a
# live server-side subscription, so resubmitting blindly would not be
# idempotent.  Both halves are pinned against scripted fake servers that
# count exactly what they were sent.

class _FakeServer:
    """A scripted NDJSON endpoint recording every submit frame it reads."""

    def __init__(self, script) -> None:
        self.script = script            # called as script(conn_no, r, w)
        self.submits: list[dict] = []
        self.conns = 0
        self._server = None
        self.port = 0

    async def __aenter__(self):
        self._server = await asyncio.start_server(self._handle,
                                                  "127.0.0.1", 0)
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def __aexit__(self, *exc):
        self._server.close()
        await self._server.wait_closed()

    async def _handle(self, reader, writer):
        self.conns += 1
        try:
            await self.script(self, self.conns, reader, writer)
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass


async def _read_submit(fake, reader):
    line = await reader.readline()
    if not line:
        return None
    frame = P.decode_frame(line)
    fake.submits.append(frame)
    return frame


def test_client_retries_connect_refused_with_backoff():
    """``open(retries=...)`` rides out a server that is still binding:
    refused connects are retried, and the eventual session works."""

    async def script(fake, conn_no, reader, writer):
        frame = await _read_submit(fake, reader)
        writer.write(P.encode_frame(
            {"req": frame["req"], "event": P.EV_PONG,
             "version": P.PROTOCOL_VERSION}))
        await writer.drain()

    async def main():
        # Claim a port, then release it so the first connect is refused.
        probe = await asyncio.start_server(lambda r, w: None,
                                           "127.0.0.1", 0)
        port = probe.sockets[0].getsockname()[1]
        probe.close()
        await probe.wait_closed()

        fake = _FakeServer(script)

        async def start_late():
            await asyncio.sleep(0.15)
            fake._server = await asyncio.start_server(fake._handle,
                                                      "127.0.0.1", port)

        late = asyncio.ensure_future(start_late())
        client = await AsyncServeClient.connect(
            port=port, retries=6, backoff_base_s=0.05)
        assert (await client.ping())["event"] == P.EV_PONG
        await client.close()
        await late
        fake._server.close()
        await fake._server.wait_closed()

    asyncio.run(main())


def test_client_resubmits_only_pre_acceptance_drops():
    """Connections dropped before any event are safely retried — and the
    job is only ever observed once by the server that finally answers."""

    async def script(fake, conn_no, reader, writer):
        if conn_no <= 2:
            return                      # drop before any event
        frame = await _read_submit(fake, reader)
        req = frame["req"]
        writer.write(P.encode_frame({"req": req, "event": P.EV_ACCEPTED,
                                     "job": "j1"}))
        writer.write(P.encode_frame({"req": req, "event": P.EV_DONE,
                                     "result": {"answered": True}}))
        await writer.drain()

    async def main():
        async with _FakeServer(script) as fake:
            client = await AsyncServeClient.connect(port=fake.port)
            result = await client.submit("echo", {"x": 1}, retries=5,
                                         backoff_base_s=0.01)
            assert result == {"answered": True}
            # Conns 1-2 dropped the request unobserved; only the serving
            # connection ever saw a submit frame.
            assert len(fake.submits) == 1
            await client.close()

    asyncio.run(main())


def test_client_reset_mid_response_raises_not_resubmits():
    """Once any event has arrived, a dropped connection must raise
    :class:`ServerClosed` — never a silent resubmit — even with retries
    budget left.  The fake server proves it saw exactly one submit."""

    async def script(fake, conn_no, reader, writer):
        frame = await _read_submit(fake, reader)
        if frame is None:
            return
        writer.write(P.encode_frame({"req": frame["req"],
                                     "event": P.EV_ACCEPTED, "job": "j1"}))
        await writer.drain()            # acknowledged, then die mid-job

    async def main():
        async with _FakeServer(script) as fake:
            client = await AsyncServeClient.connect(port=fake.port)
            with pytest.raises(ServerClosed) as excinfo:
                await client.submit("echo", {"x": 1}, retries=3,
                                    backoff_base_s=0.01)
            assert "mid-job" in str(excinfo.value)
            assert len(fake.submits) == 1       # no blind resubmission
            await client.close()

    asyncio.run(main())


def test_client_exhausted_retries_surface_refused():
    async def main():
        probe = await asyncio.start_server(lambda r, w: None,
                                           "127.0.0.1", 0)
        port = probe.sockets[0].getsockname()[1]
        probe.close()
        await probe.wait_closed()
        with pytest.raises(ConnectionRefusedError):
            await AsyncServeClient.connect(port=port, retries=1,
                                           backoff_base_s=0.01)

    asyncio.run(main())


# ------------------------------------------------------- two-tier LRU
def test_lru_hit_miss_and_recency():
    lru = LRUCache(max_entries=2)
    lru.put("a", 1)
    lru.put("b", 2)
    assert lru.get("a") == 1            # refreshes "a"
    lru.put("c", 3)                     # evicts "b", the stale one
    assert lru.get("b") is None
    assert lru.get("a") == 1 and lru.get("c") == 3
    assert lru.stats.hits == 3 and lru.stats.misses == 1
    assert lru.stats.evictions == 1


def test_lru_byte_bound_and_oversize_skip():
    lru = LRUCache(max_entries=64, max_bytes=200)
    big = "x" * 500
    lru.put("big", big)                 # larger than the whole cache
    assert lru.get("big") is None and len(lru) == 0
    for i in range(10):
        lru.put(f"k{i}", "y" * 40)
    assert lru.bytes <= 200
    assert 0 < len(lru) < 10            # byte bound forced evictions


def test_lru_clear_resets_contents_not_stats():
    lru = LRUCache(max_entries=4)
    lru.put("a", 1)
    assert lru.get("a") == 1
    lru.clear()
    assert len(lru) == 0 and lru.bytes == 0
    assert lru.get("a") is None
    assert lru.stats.hits == 1          # history survives for obs


# ----------------------------------------------------- membership unit
def test_parse_addr_accepts_host_port_only():
    assert parse_addr("127.0.0.1:9000") == ("127.0.0.1", 9000)
    assert parse_addr("node.example:80") == ("node.example", 80)
    for bad in ("no-port", ":9000", "host:", "host:banana"):
        with pytest.raises(ValueError):
            parse_addr(bad)


def test_membership_add_remove_versioning():
    m = Membership("n0", "127.0.0.1:1")
    assert m.view() == [["n0", "127.0.0.1:1"]]
    assert m.add("n1", "127.0.0.1:2") and m.version == 1
    assert not m.add("n1", "127.0.0.1:2")       # idempotent
    assert m.owner("some-key") in {"n0", "n1"}
    assert m.others() == ["n1"]
    assert m.addr_of("n1") == "127.0.0.1:2"
    assert m.remove("n1") and not m.remove("n1")
    assert not m.remove("n0")                   # never forget yourself
    assert m.version == 2


def test_membership_merge_ignores_malformed_entries():
    m = Membership("n0", "127.0.0.1:1")
    changed = m.merge([["n1", "127.0.0.1:2"], "garbage", [1, 2],
                       ["n2", "127.0.0.1:3", "extra"], None])
    assert changed
    # Only the well-formed pair lands; wrong arity/type entries are skipped.
    assert set(m.members) == {"n0", "n1"}
    assert not m.merge([])
    assert not m.merge(None)
