"""Unit tests for the serve subsystem's pieces: protocol, jobs, pool.

Integration tests (real sockets, real worker processes) live in
``tests/test_serve_service.py``; everything here runs in-process.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.harness import task
from repro.serve import protocol as P
from repro.serve.jobs import (
    DONE,
    FAILED,
    HISTORY_LIMIT,
    Job,
    JobTable,
    QUEUED,
    RUNNING,
)
from repro.serve.ops import echo
from repro.serve.pool import WorkerPool, _run_guarded
from repro.serve.protocol import RemoteError
from repro.serve.server import SimulationServer


# ------------------------------------------------------------- protocol
def test_frame_round_trip():
    frame = {"op": "submit", "req": 7, "fn": "echo", "args": [1], "kwargs": {}}
    line = P.encode_frame(frame)
    assert line.endswith(b"\n") and b"\n" not in line[:-1]
    assert P.decode_frame(line) == frame


def test_decode_frame_rejects_garbage():
    with pytest.raises(P.ProtocolError):
        P.decode_frame(b"{ not json\n")
    with pytest.raises(P.ProtocolError):
        P.decode_frame(b"[1, 2, 3]\n")           # not an object
    with pytest.raises(P.ProtocolError):
        P.decode_frame(b"\xff\xfe\n")            # not UTF-8
    with pytest.raises(P.ProtocolError):
        P.decode_frame(b"x" * (P.MAX_LINE_BYTES + 1))


def test_submit_frame_optional_fields():
    bare = P.submit_frame(1, "echo", [], {})
    assert "quiet" not in bare and "timeout_s" not in bare
    full = P.submit_frame(1, "echo", [], {}, quiet=True, timeout_s=2.5)
    assert full["quiet"] is True and full["timeout_s"] == 2.5


def test_remote_error_round_trip():
    err = RemoteError(type="ValueError", message="boom", traceback="tb...")
    assert RemoteError.from_dict(err.as_dict()) == err
    assert str(err) == "ValueError: boom"
    # Missing fields default rather than raise (forward compatibility).
    assert RemoteError.from_dict({}).type == "Exception"


# ----------------------------------------------------------------- jobs
def _table_job(table, payload="x"):
    t = task(echo, payload)
    return table.get_or_create(t, t.cache_key(), now_s=1.0)


def test_job_table_single_flight_dedup():
    table = JobTable()
    job, deduped = _table_job(table)
    assert not deduped and job.state == QUEUED and table.depth == 1
    again, deduped2 = _table_job(table)
    assert deduped2 and again is job
    assert job.subscribers == 2 and job.coalesced == 1
    assert table.stats.submitted == 1 and table.stats.dedup_hits == 1
    # A different payload is a different job.
    other, deduped3 = _table_job(table, payload="y")
    assert not deduped3 and other is not job and table.depth == 2


def test_job_table_finish_moves_to_history():
    table = JobTable()
    job, _ = _table_job(table)
    table.finish(job, DONE, now_s=2.0)
    assert table.depth == 0 and list(table.history) == [job]
    assert table.stats.completed == 1
    assert job.elapsed_s == pytest.approx(1.0)
    # Finishing again under a new submit creates a *fresh* job (the old
    # one left the active index).
    job2, deduped = _table_job(table)
    assert not deduped and job2 is not job


def test_job_table_history_is_bounded():
    table = JobTable(history_limit=4)
    for i in range(10):
        job, _ = _table_job(table, payload=i)
        table.finish(job, FAILED, now_s=1.0)
    assert len(table.history) == 4
    assert table.stats.failed == 10
    assert HISTORY_LIMIT == 256                   # wire-documented default


def test_job_listing_active_then_recent():
    table = JobTable()
    a, _ = _table_job(table, "a")
    b, _ = _table_job(table, "b")
    table.finish(a, DONE, now_s=1.0)
    listing = table.listing()
    assert [e["state"] for e in listing] == [QUEUED, DONE]
    assert listing[0]["job"] == b.short_key
    assert set(listing[0]) >= {"id", "fn", "attempts", "subscribers",
                               "coalesced", "cached", "elapsed_s"}


def test_job_event_fanout():
    async def main():
        job = Job(jid=1, key="k" * 64, task=task(echo, 1))
        q1, q2 = job.subscribe(), job.subscribe()
        job.publish({"event": P.EV_STATE, "state": RUNNING})
        job.unsubscribe(q2)
        job.publish({"event": P.EV_DONE})
        assert q1.qsize() == 2 and q2.qsize() == 1
        job.unsubscribe(q2)                       # double-unsubscribe is fine

    asyncio.run(main())


# ----------------------------------------------------------------- pool
def test_pool_rejects_bad_sizing():
    with pytest.raises(ValueError):
        WorkerPool(max_workers=0)
    with pytest.raises(ValueError):
        WorkerPool(max_retries=0)


def test_run_guarded_success_shape():
    t = task(echo, {"deep": [1, 2]})
    out = _run_guarded(t.fn, t.args, t.kwargs, with_obs=False)
    assert out["ok"] is True
    assert out["result"] == {"deep": [1, 2]}
    json.dumps(out)                               # wire-serializable


def test_run_guarded_failure_shape():
    out = _run_guarded("repro.serve.ops:resolve_config", [],
                       {"cores": 3}, with_obs=False)
    assert out["ok"] is False
    err = out["error"]
    assert err["type"] == "ValueError"
    assert "perfect square" in err["message"]
    assert "Traceback (most recent call last)" in err["traceback"]
    assert "_experiment_from_params" in err["traceback"]  # original frames


# ----------------------------------------------- request canonicalization
def test_canonical_task_matches_local_key():
    """A wire request hashes to the same content key as the equivalent
    local SweepTask — the property dedup and cache sharing rest on."""
    server = SimulationServer(port=0)
    local = task(echo, "x", sleep_s=0.5)
    from repro.harness import encode_value
    wire = server._canonical_task({
        "fn": "echo",
        "args": encode_value(("x",)),
        "kwargs": encode_value({"sleep_s": 0.5}),
    })
    assert wire.cache_key() == local.cache_key()
    # Plain JSON spellings (list args, no codec tags) canonicalize too.
    plain = server._canonical_task({
        "fn": "echo", "args": ["x"], "kwargs": {"sleep_s": 0.5}})
    assert plain.cache_key() == local.cache_key()
    # The full dotted ref is accepted when it is a registered value.
    dotted = server._canonical_task({
        "fn": "repro.serve.ops:echo",
        "args": ["x"], "kwargs": {"sleep_s": 0.5}})
    assert dotted.cache_key() == local.cache_key()


def test_canonical_task_rejects_unknown_ops():
    server = SimulationServer(port=0)
    with pytest.raises(KeyError):
        server._canonical_task({"fn": "os:system", "args": [], "kwargs": {}})
    with pytest.raises(KeyError):
        server._canonical_task({"fn": "nope", "args": [], "kwargs": {}})
