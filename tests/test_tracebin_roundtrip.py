"""Binary trace container round-trips and rejection paths (satellite 3).

``docs/TRACE_FORMAT.md`` promises the binary container is a lossless
re-encoding of the canonical JSON form.  This file pins that promise three
ways: byte-stability of binary -> JSON -> binary on the golden corpus,
hard rejection of damaged payloads (truncation, bad magic, future
versions, corrupt blocks), and a hypothesis identity over generated
dependency DAGs.
"""

from __future__ import annotations

import pathlib
import struct

import pytest
from hypothesis import given, settings

from repro.core import tracebin
from repro.core.trace import EndMarker, Trace, TraceRecord
from repro.core.tracebin import MAGIC, TraceBinError, VERSION
from repro.validate.golden import GOLDEN_SCENARIOS, _trace_path

from tests.test_properties_trace import traces

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"


def _golden(scenario) -> Trace:
    return Trace.from_json(_trace_path(GOLDEN_DIR, scenario).read_text())


def _sample() -> Trace:
    records = [
        TraceRecord(msg_id=0, key=(0, 1, "req_read", 0, 0), src=0, dst=1,
                    size_bytes=64, kind="req_read", t_inject=5, t_deliver=20,
                    cause_id=-1, gap=5),
        TraceRecord(msg_id=1, key=(1, 0, "reply", 0, 0), src=1, dst=0,
                    size_bytes=512, kind="reply", t_inject=23, t_deliver=60,
                    cause_id=0, gap=3),
    ]
    return Trace(records=records,
                 end_markers=[EndMarker(0, 70, 1, 10), EndMarker(1, 30, 0, 10)],
                 exec_time=70, meta={"workload": "sample", "seed": 1})


# ------------------------------------------------------------- round-trips

@pytest.mark.parametrize("scenario", GOLDEN_SCENARIOS, ids=lambda s: s.name)
def test_golden_corpus_binary_json_binary_is_byte_stable(scenario):
    trace = _golden(scenario)
    blob = trace.to_binary()
    back = Trace.from_binary(blob)
    # Lossless through the JSON container and byte-stable through the
    # binary one, in both compositions.
    assert back.to_json() == trace.to_json()
    assert Trace.from_json(back.to_json()).to_binary() == blob
    assert back.to_binary() == blob


def test_round_trip_preserves_every_field():
    trace = _sample()
    back = Trace.from_binary(trace.to_binary())
    assert back.records == trace.records
    assert back.end_markers == trace.end_markers
    assert back.exec_time == trace.exec_time
    assert back.meta == trace.meta


def test_empty_trace_round_trips():
    trace = Trace(records=[], end_markers=[], exec_time=0, meta={"k": "v"})
    back = Trace.from_binary(trace.to_binary())
    assert len(back) == 0
    assert back.meta == {"k": "v"}


def test_chunking_is_invisible():
    """The chunk size is a container knob, not part of the content."""
    trace = _sample()
    one_per_chunk = tracebin.dumps(trace, chunk_records=1)
    assert Trace.from_binary(one_per_chunk).to_json() == trace.to_json()


# --------------------------------------------------------- rejection paths

def test_bad_magic_rejected():
    blob = bytearray(_sample().to_binary())
    blob[:4] = b"JUNK"
    with pytest.raises(TraceBinError, match="bad magic"):
        Trace.from_binary(bytes(blob))


def test_json_payload_is_not_a_binary_trace():
    with pytest.raises(TraceBinError, match="bad magic"):
        Trace.from_binary(_sample().to_json().encode())


def test_version_mismatch_rejected():
    blob = bytearray(_sample().to_binary())
    struct.pack_into("<I", blob, len(MAGIC), VERSION + 1)
    with pytest.raises(TraceBinError, match="version"):
        Trace.from_binary(bytes(blob))


def test_truncated_header_rejected():
    blob = _sample().to_binary()
    for cut in (0, 3, len(MAGIC) + 1):
        with pytest.raises(TraceBinError):
            Trace.from_binary(blob[:cut])


def test_truncated_body_rejected_at_every_cut():
    """No prefix of a valid trace may load (the END block is mandatory)."""
    blob = _sample().to_binary()
    for cut in range(len(MAGIC) + 4, len(blob), 7):
        with pytest.raises(TraceBinError):
            Trace.from_binary(blob[:cut])


def test_unknown_block_type_rejected():
    blob = bytearray(_sample().to_binary())
    # First block starts right after the fixed header.
    blob[len(MAGIC) + 4] = 99
    with pytest.raises(TraceBinError, match="unknown block"):
        Trace.from_binary(bytes(blob))


def test_corrupt_record_payload_rejected():
    trace = _sample()
    blob = trace.to_binary()
    # Flip a byte in the middle of the RECORDS block region; any of the
    # possible corruptions must surface as TraceBinError or a validation
    # ValueError — never a silently different trace.
    mid = len(blob) // 2
    blob = blob[:mid] + bytes([blob[mid] ^ 0xFF]) + blob[mid + 1:]
    try:
        back = Trace.from_binary(blob)
    except (TraceBinError, ValueError):
        return  # rejected: the common case
    # Corruption that survives decoding + validation must at least be
    # *visible* — it can never alias back to the original content.
    assert back.to_json() != trace.to_json()


# ------------------------------------------------- header-only inspection

def _block_offsets(blob: bytes):
    """Yield (offset, type, payload_len) for every block in ``blob``."""
    bh = struct.Struct("<BI")
    off = len(MAGIC) + 4
    while off < len(blob):
        btype, length = bh.unpack_from(blob, off)
        yield off, btype, length
        off += bh.size + length


def test_trace_info_reports_per_block_sizes(tmp_path):
    trace = _sample()
    path = tmp_path / "t.rtrc"
    path.write_bytes(tracebin.dumps(trace, chunk_records=1))
    info = tracebin.trace_info(path)
    assert info["truncated"] is False
    assert info["records"] == 2
    assert info["chunks"] == 2
    assert len(info["record_chunk_bytes"]) == 2
    # Per-block accounting must tile the file exactly: fixed header +
    # 5 bytes of head per block + the payload sizes.
    n_blocks = sum(a["count"] for a in info["blocks"].values())
    payload_total = sum(a["bytes"] for a in info["blocks"].values())
    assert payload_total + 5 * n_blocks + len(MAGIC) + 4 == info["file_bytes"]
    assert info["blocks"]["RECORDS"]["count"] == 2
    assert info["blocks"]["RECORDS"]["bytes"] == sum(
        info["record_chunk_bytes"])
    assert info["blocks"]["END"]["count"] == 1


def test_trace_info_tolerates_truncation_after_meta(tmp_path):
    """The O(header) pin: a file cut right after the META block still
    yields its meta and ``truncated=True`` from ``trace_info``, while the
    loading readers keep rejecting it (END stays mandatory for loads)."""
    blob = tracebin.dumps(_sample())
    off, btype, length = next(iter(_block_offsets(blob)))
    assert btype == 1  # META is always first
    cut = off + 5 + length
    path = tmp_path / "trunc.rtrc"
    path.write_bytes(blob[:cut])
    info = tracebin.trace_info(path)
    assert info["truncated"] is True
    assert info["meta"] == {"workload": "sample", "seed": 1}
    assert info["records"] is None
    assert info["exec_time"] is None
    assert info["chunks"] == 0
    with pytest.raises(TraceBinError, match="missing END"):
        Trace.from_binary(blob[:cut])
    with pytest.raises(TraceBinError):
        tracebin.read_summary(path)


def test_trace_info_tolerates_mid_block_truncation(tmp_path):
    """A cut *inside* a RECORDS payload still reports the intact prefix."""
    blob = tracebin.dumps(_sample())
    records_off = next(
        off for off, btype, _ in _block_offsets(blob) if btype == 3)
    path = tmp_path / "trunc.rtrc"
    path.write_bytes(blob[:records_off + 5 + 3])  # 3 bytes into the payload
    info = tracebin.trace_info(path)
    assert info["truncated"] is True
    assert info["chunks"] == 0  # the cut chunk is not counted as intact
    assert info["blocks"].get("META", {}).get("count") == 1


def test_trace_info_never_decodes_record_payloads(tmp_path):
    """Garbage record *payload* bytes cannot break the info scan — proof
    that it works from the block heads alone."""
    blob = bytearray(tracebin.dumps(_sample(), chunk_records=1))
    for off, btype, length in _block_offsets(bytes(blob)):
        if btype == 3:  # RECORDS
            blob[off + 5:off + 5 + length] = b"\xff" * length
    path = tmp_path / "corrupt.rtrc"
    path.write_bytes(bytes(blob))
    info = tracebin.trace_info(path)
    assert info["truncated"] is False
    assert info["records"] == 2
    assert info["chunks"] == 2
    # The full loader must still reject the damaged payloads.
    with pytest.raises((TraceBinError, ValueError)):
        tracebin.read_file(path)


# ------------------------------------------------------------- hypothesis

@given(traces())
@settings(max_examples=60, deadline=None)
def test_binary_round_trip_identity_on_generated_traces(trace):
    back = Trace.from_binary(trace.to_binary())
    assert back.records == trace.records
    assert back.end_markers == trace.end_markers
    assert back.exec_time == trace.exec_time
    assert back.to_json() == trace.to_json()
