"""Coverage for smaller surfaces: summaries, loss presets, factory errors."""

from __future__ import annotations

import pytest

from repro.config import NocConfig, OnocConfig
from repro.engine import Simulator
from repro.net import Message
from repro.noc import ElectricalNetwork
from repro.onoc import LossBudget, build_optical_network
from repro.stats import NetworkStats, RunSummary


# ------------------------------------------------------------- RunSummary
def test_run_summary_row():
    st = NetworkStats()
    st.messages_delivered = 5
    st.latency.record(1, 10)
    s = RunSummary(label="x", exec_time_cycles=100, wall_clock_s=1.234,
                   network=st, extra={"note": "y"})
    row = s.as_row()
    assert row["label"] == "x"
    assert row["wall_clock_s"] == 1.234
    assert row["messages"] == 5
    assert row["avg_latency"] == 10.0
    assert row["note"] == "y"


# ------------------------------------------------------------ loss presets
def test_swmr_loss_matches_mwsr_shape():
    cfg = OnocConfig()
    b = LossBudget(cfg)
    # Same serpentine geometry and ring pass count in this model.
    assert b.swmr_worst_loss_db() == pytest.approx(b.crossbar_worst_loss_db())


def test_awgr_loss_includes_insertion():
    cfg = OnocConfig(topology="awgr")
    b = LossBudget(cfg)
    assert b.awgr_worst_loss_db(awgr_insertion_db=0.0) < b.awgr_worst_loss_db()
    with pytest.raises(ValueError):
        b.awgr_worst_loss_db(awgr_insertion_db=-1.0)


def test_awgr_loss_smaller_than_crossbar():
    b = LossBudget(OnocConfig(topology="awgr"))
    assert b.awgr_worst_loss_db() < b.crossbar_worst_loss_db()


# ---------------------------------------------------------------- factory
def test_optical_factory_rejects_unknown():
    sim = Simulator(seed=1)
    cfg = OnocConfig()
    object.__setattr__(cfg, "topology", "freeform")  # bypass frozen validation
    with pytest.raises(ValueError, match="unknown optical topology"):
        build_optical_network(sim, cfg)


# ------------------------------------------------------- network edge cases
def test_message_to_adjacent_and_far_nodes_same_run():
    sim = Simulator(seed=1)
    net = ElectricalNetwork(sim, NocConfig())
    lats = {}
    for dst in (1, 15):
        m = Message(0, dst, 16, payload=dst,
                    on_delivery=lambda m: lats.__setitem__(m.payload, m.latency))
        sim.schedule(0, net.send, (m,))
    sim.run()
    assert lats[15] > lats[1]


def test_zero_payload_message_min_size():
    sim = Simulator(seed=1)
    net = ElectricalNetwork(sim, NocConfig())
    done = []
    net.set_delivery_handler(done.append)
    sim.schedule(0, net.send, (Message(0, 1, 1),))  # 1 byte -> 1 flit
    sim.run()
    assert net.stats.flits_delivered == 1


def test_parallel_flows_share_fairly():
    """Two symmetric opposing flows finish within ~25% of each other
    (round-robin arbitration fairness)."""
    sim = Simulator(seed=1)
    net = ElectricalNetwork(sim, NocConfig())
    finish = {}
    for k in range(10):
        for src, dst in ((0, 3), (3, 0)):
            m = Message(src, dst, 64, payload=(src, k),
                        on_delivery=lambda m: finish.__setitem__(
                            m.payload, m.deliver_time))
            sim.schedule(0, net.send, (m,))
    sim.run()
    last_a = max(t for (s, _), t in finish.items() if s == 0)
    last_b = max(t for (s, _), t in finish.items() if s == 3)
    assert abs(last_a - last_b) <= 0.25 * max(last_a, last_b)


def test_crossbar_queueing_delay_stat_records():
    from repro.onoc import OpticalCrossbar

    sim = Simulator(seed=1)
    net = OpticalCrossbar(sim, OnocConfig())
    for k in range(4):
        sim.schedule(0, net.send, (Message(k, 9, 720),))
    sim.run()
    assert net.stats.queueing_delay.count == 4
    assert net.stats.queueing_delay.max > 0
