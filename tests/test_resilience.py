"""The resilience subsystem: schema round-trips, generator determinism and
monotonicity, the empty-timeseries byte-identity contract on every backend,
policy penalty accounting, and the degraded engine differential.

The byte-identity pin is the subsystem's safety contract: a ``TraceConfig``
with no fault events must replay *exactly* like stock — same injections,
same deliveries, no resilience payload — on both engines and all four
optical backends, so the degradation hook provably costs nothing when off.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path

import pytest

from repro.config import (
    ENGINE_EVENT,
    ENGINE_GENERATIONAL,
    MITIGATION_DISABLE,
    MITIGATION_NONE,
    MITIGATION_REALLOCATE,
    MITIGATIONS,
    OnocConfig,
    TraceConfig,
)
from repro.core.replay import replay_trace
from repro.core.trace import Trace
from repro.harness.builders import optical_factory
from repro.resilience import (
    FaultEvent,
    FaultTimeseries,
    GENERATOR_FAMILIES,
    TimeseriesError,
    generate_timeseries,
)
from repro.validate.engines import (
    ENGINE_DEGRADE_FAMILY,
    ENGINE_DEGRADE_INTENSITY,
    compare_engines,
)
from repro.validate.golden import GOLDEN_SCENARIOS, _trace_path

GOLDEN_DIR = Path(__file__).parent / "golden"

ALL_FAMILIES = "+".join(sorted(GENERATOR_FAMILIES))


def _golden(scenario):
    trace = Trace.from_json(_trace_path(GOLDEN_DIR, scenario).read_text())
    onoc = OnocConfig(num_nodes=scenario.cores,
                      num_wavelengths=scenario.wavelengths,
                      topology=scenario.target)
    return trace, onoc


def _series_for(trace, scenario, intensity=0.9, family=ALL_FAMILIES):
    horizon = max((r.t_inject for r in trace.records), default=1)
    return generate_timeseries(family, seed=scenario.seed,
                               num_nodes=scenario.cores,
                               horizon=max(1, horizon), intensity=intensity)


# ---------------------------------------------------------------------------
# Schema / containers
# ---------------------------------------------------------------------------

class TestTimeseriesSchema:
    def test_sorted_and_canonical(self):
        a = FaultTimeseries([FaultEvent(5, "global", 0.5),
                             FaultEvent(1, "node:3", 0.2)])
        b = FaultTimeseries([FaultEvent(1, "node:3", 0.2),
                             FaultEvent(5, "global", 0.5)])
        assert a == b and hash(a) == hash(b)
        assert [e.time for e in a] == [1, 5]

    def test_duplicate_step_rejected(self):
        with pytest.raises(TimeseriesError, match="duplicate"):
            FaultTimeseries([FaultEvent(1, "global", 0.5),
                             FaultEvent(1, "global", 0.7)])

    @pytest.mark.parametrize("target", [
        "globe", "node:", "node:-1", "link:1", "link:2-2", "wl:x", "links:1-2",
    ])
    def test_bad_targets_rejected(self, target):
        with pytest.raises(TimeseriesError):
            FaultEvent(0, target, 0.5)

    @pytest.mark.parametrize("sev", [-0.1, 1.5])
    def test_severity_range(self, sev):
        with pytest.raises(TimeseriesError):
            FaultEvent(0, "global", sev)

    def test_csv_header_required(self):
        with pytest.raises(TimeseriesError, match="header"):
            FaultTimeseries.from_csv("1,global,0.5\n")

    def test_from_text_sniffs_container(self):
        s = generate_timeseries(ALL_FAMILIES, seed=3, num_nodes=8,
                                horizon=500, intensity=0.7)
        # CSV uses %g formatting, so severities round — the round-trip is a
        # serialization fixed point, not float-exact; JSON is exact.
        csv_rt = FaultTimeseries.from_text(s.to_csv())
        assert csv_rt.to_csv() == s.to_csv()
        assert [e.as_tuple()[:2] for e in csv_rt] == \
            [e.as_tuple()[:2] for e in s]
        assert FaultTimeseries.from_text(s.to_json()) == s


# hypothesis round-trip: parse -> serialize -> parse is the identity for
# every container, on arbitrary valid event sets.
hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402


@st.composite
def timeseries(draw):
    n = draw(st.integers(min_value=0, max_value=12))
    events, seen = [], set()
    for _ in range(n):
        t = draw(st.integers(min_value=0, max_value=10_000))
        kind = draw(st.sampled_from(("global", "node", "link", "wl")))
        if kind == "global":
            target = "global"
        elif kind == "link":
            src = draw(st.integers(min_value=0, max_value=15))
            dst = draw(st.integers(min_value=0, max_value=14))
            target = f"link:{src}-{dst if dst < src else dst + 1}"
        else:
            target = f"{kind}:{draw(st.integers(min_value=0, max_value=63))}"
        if (t, target) in seen:
            continue
        seen.add((t, target))
        sev = draw(st.floats(min_value=0.0, max_value=1.0,
                             allow_nan=False, width=32))
        events.append(FaultEvent(t, target, sev))
    return FaultTimeseries(events)


class TestRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(series=timeseries())
    def test_csv_roundtrip(self, series):
        again = FaultTimeseries.from_csv(series.to_csv())
        # %g formatting may shorten severities; re-serialization must be a
        # fixed point even so.
        assert again.to_csv() == FaultTimeseries.from_csv(again.to_csv()).to_csv()
        assert [e.as_tuple()[:2] for e in again] == \
            [e.as_tuple()[:2] for e in series]

    @settings(max_examples=60, deadline=None)
    @given(series=timeseries())
    def test_json_roundtrip(self, series):
        assert FaultTimeseries.from_json(series.to_json()) == series

    @settings(max_examples=60, deadline=None)
    @given(series=timeseries())
    def test_tuple_roundtrip(self, series):
        assert FaultTimeseries.from_tuples(series.as_tuples()) == series


# ---------------------------------------------------------------------------
# Generators
# ---------------------------------------------------------------------------

class TestGenerators:
    @pytest.mark.parametrize("family", sorted(GENERATOR_FAMILIES))
    def test_seed_determinism(self, family):
        kw = dict(seed=42, num_nodes=16, horizon=5000, intensity=0.8)
        assert generate_timeseries(family, **kw) == \
            generate_timeseries(family, **kw)
        assert generate_timeseries(family, **kw) != generate_timeseries(
            family, **{**kw, "seed": 43})

    @pytest.mark.parametrize("family", sorted(GENERATOR_FAMILIES))
    def test_severity_monotone_in_intensity(self, family):
        kw = dict(seed=11, num_nodes=16, horizon=5000)
        prev = None
        for intensity in (0.2, 0.5, 0.8, 1.0):
            series = generate_timeseries(family, intensity=intensity, **kw)
            assert len(series) > 0
            if prev is not None:
                assert len(series) == len(prev)
                for lo, hi in zip(prev, series):
                    assert (lo.time, lo.target) == (hi.time, hi.target)
                    assert hi.severity >= lo.severity
            prev = series

    def test_combined_families_merge(self):
        kw = dict(seed=9, num_nodes=16, horizon=4000, intensity=0.6)
        combined = generate_timeseries(ALL_FAMILIES, **kw)
        kinds = {e.target.split(":")[0] for e in combined}
        # Thermal drift hits nodes, droop hits global, bursts hit links.
        assert {"node", "global", "link"} <= kinds

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="unknown degradation family"):
            generate_timeseries("gamma_rays", seed=1, num_nodes=4, horizon=10)


# ---------------------------------------------------------------------------
# Empty timeseries == stock replay, byte for byte (both engines, 4 backends)
# ---------------------------------------------------------------------------

class TestByteIdentity:
    @pytest.mark.parametrize("scenario", GOLDEN_SCENARIOS,
                             ids=lambda s: s.target)
    @pytest.mark.parametrize("engine", (ENGINE_EVENT, ENGINE_GENERATIONAL))
    def test_empty_timeseries_is_stock(self, scenario, engine):
        trace, onoc = _golden(scenario)
        stock = replay_trace(trace, optical_factory(onoc, scenario.seed),
                             TraceConfig(engine=engine))
        empty = replay_trace(
            trace, optical_factory(onoc, scenario.seed),
            TraceConfig(engine=engine, fault_events=(),
                        mitigation=MITIGATION_DISABLE))
        assert stock.injections == empty.injections
        assert stock.deliveries == empty.deliveries
        assert stock.exec_time_estimate == empty.exec_time_estimate
        assert "resilience" not in stock.extra
        assert "resilience" not in empty.extra


# ---------------------------------------------------------------------------
# Degraded replay: penalties + engine equivalence
# ---------------------------------------------------------------------------

class TestDegradedReplay:
    def test_policies_produce_distinct_penalties(self):
        scenario = GOLDEN_SCENARIOS[0]          # fft -> crossbar
        trace, onoc = _golden(scenario)
        series = _series_for(trace, scenario, intensity=1.0)
        pens = {}
        for mitigation in MITIGATIONS:
            res = replay_trace(
                trace, optical_factory(onoc, scenario.seed),
                TraceConfig(fault_events=series.as_tuples(),
                            mitigation=mitigation))
            payload = res.extra["resilience"]
            assert payload["mitigation"] == mitigation
            assert payload["events"] == len(series)
            pen = payload["penalty"]
            assert pen["total_cycles"] > 0
            assert pen["messages_affected"] <= pen["messages_total"]
            pens[mitigation] = pen
        assert pens[MITIGATION_DISABLE]["total_cycles"] != \
            pens[MITIGATION_REALLOCATE]["total_cycles"]
        # The policies pay in their own currency.
        assert pens[MITIGATION_NONE]["detour_cycles"] == 0
        assert pens[MITIGATION_NONE]["retune_cycles"] == 0
        assert pens[MITIGATION_DISABLE]["detour_cycles"] > 0
        assert pens[MITIGATION_DISABLE]["retune_cycles"] == 0
        assert pens[MITIGATION_REALLOCATE]["retune_cycles"] > 0
        assert pens[MITIGATION_REALLOCATE]["detour_cycles"] == 0

    def test_penalty_curve_covers_epochs(self):
        scenario = GOLDEN_SCENARIOS[0]
        trace, onoc = _golden(scenario)
        series = _series_for(trace, scenario)
        res = replay_trace(
            trace, optical_factory(onoc, scenario.seed),
            TraceConfig(fault_events=series.as_tuples(),
                        mitigation=MITIGATION_NONE))
        curve = res.extra["resilience"]["curve"]
        # One row per epoch: the pristine prefix plus one per distinct
        # event time.
        times = sorted({e.time for e in series})
        assert [row["time"] for row in curve] == [0] + times
        assert curve[0]["level_max_pm"] == 0

    @pytest.mark.parametrize(
        "cell_idx,scenario", list(enumerate(GOLDEN_SCENARIOS)),
        ids=lambda v: v.target if hasattr(v, "target") else str(v))
    def test_degraded_engines_agree(self, cell_idx, scenario):
        trace, onoc = _golden(scenario)
        series = _series_for(trace, scenario,
                             intensity=ENGINE_DEGRADE_INTENSITY,
                             family=ENGINE_DEGRADE_FAMILY)
        mitigation = MITIGATIONS[cell_idx % len(MITIGATIONS)]
        cell = compare_engines(
            trace, onoc,
            TraceConfig(fault_events=series.as_tuples(),
                        mitigation=mitigation),
            scenario.seed, scenario=scenario.workload,
            faults=f"degrade/{mitigation}")
        assert cell.passed, cell.describe()

    def test_degraded_result_is_deterministic(self):
        scenario = GOLDEN_SCENARIOS[1]          # radix -> awgr
        trace, onoc = _golden(scenario)
        series = _series_for(trace, scenario)
        cfg = TraceConfig(fault_events=series.as_tuples(),
                          mitigation=MITIGATION_REALLOCATE)
        runs = [replay_trace(trace, optical_factory(onoc, scenario.seed),
                             dataclasses.replace(cfg))
                for _ in range(2)]
        assert runs[0].injections == runs[1].injections
        assert runs[0].deliveries == runs[1].deliveries
        assert runs[0].extra["resilience"] == runs[1].extra["resilience"]
