"""Differential harness: generation determinism, shrinking, repro files,
and jobs-count independence of the full smoke report.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.harness.parallel import SweepRunner
from repro.validate import (
    ErrorEnvelope,
    Scenario,
    generate_scenarios,
    load_repro_scenario,
    run_differential,
    run_scenario,
    shrink,
    smoke_scenarios,
    write_repro,
)
from repro.validate.differential import _shrink_candidates

CHEAP = Scenario("prodcons", 4, 3, 0.25, "electrical", "crossbar")


def test_generate_scenarios_deterministic_in_seed():
    a = generate_scenarios(10, 42)
    b = generate_scenarios(10, 42)
    c = generate_scenarios(10, 43)
    assert a == b
    assert a != c


def test_generate_scenarios_covers_every_backend_pair():
    scenarios = generate_scenarios(30, 7)
    pairs = {(s.capture, s.target) for s in scenarios}
    # 5 capture networks x 4 targets, minus same-network pairs.
    assert len(pairs) >= 16


def test_scenario_rejects_bad_configurations():
    with pytest.raises(ValueError, match="square"):
        Scenario("fft", 6, 1, 0.5, "electrical", "crossbar")
    with pytest.raises(ValueError, match="capture"):
        Scenario("fft", 16, 1, 0.5, "nope", "crossbar")
    with pytest.raises(ValueError, match="target"):
        Scenario("fft", 16, 1, 0.5, "electrical", "electrical")
    with pytest.raises(ValueError, match="scale"):
        Scenario("fft", 16, 1, 0.0, "electrical", "crossbar")


def test_scenario_name_is_injective_over_fields():
    variants = [CHEAP, replace(CHEAP, wavelengths=16),
                replace(CHEAP, cores=16), replace(CHEAP, scale=0.1),
                replace(CHEAP, keep_dep_fraction=0.9),
                replace(CHEAP, capture="awgr"),
                replace(CHEAP, target="awgr"), replace(CHEAP, seed=4)]
    names = {s.name for s in variants}
    assert len(names) == len(variants)


def test_run_scenario_passes_on_cheap_config():
    outcome = run_scenario(CHEAP)
    assert outcome.passed, outcome.failure_summary()
    assert outcome.trace_messages > 0
    assert outcome.sc_unreplayed == 0


def test_run_scenario_deterministic():
    a = run_scenario(CHEAP)
    b = run_scenario(CHEAP)
    assert a.sc_exec_estimate == b.sc_exec_estimate
    assert a.naive_exec_estimate == b.naive_exec_estimate
    assert a.sc_exec_error_pct == b.sc_exec_error_pct


def test_differential_report_identical_across_jobs(tmp_path):
    scenarios = smoke_scenarios()[:2]
    seq = run_differential(scenarios, runner=None, do_shrink=False)
    par = run_differential(scenarios,
                           runner=SweepRunner(workers=2, cache_dir=None),
                           do_shrink=False)
    assert [o.sc_exec_estimate for o in seq.outcomes] \
        == [o.sc_exec_estimate for o in par.outcomes]
    assert [o.passed for o in seq.outcomes] == [o.passed for o in par.outcomes]
    assert seq.passed and par.passed


def test_differential_failure_writes_shrunk_repro(tmp_path):
    # An impossible envelope forces every scenario to fail, exercising the
    # shrink loop and repro serialization without needing a real model bug.
    envelope = ErrorEnvelope(max_sc_exec_error_pct=-1.0,
                             max_naive_exec_error_pct=-1.0)
    start = replace(CHEAP, cores=16, scale=0.5)
    report = run_differential([start], envelope=envelope,
                              repro_dir=tmp_path, do_shrink=True)
    assert not report.passed
    assert len(report.repro_paths) == 1
    minimal = report.shrunk[0].scenario
    # Fully shrunk along the cheap axes.
    assert minimal.cores == 4
    assert minimal.scale == pytest.approx(0.1)
    back = load_repro_scenario(report.repro_paths[0])
    assert back == minimal


def test_shrink_requires_a_failing_scenario():
    with pytest.raises(ValueError, match="does not fail"):
        shrink(CHEAP)


def test_shrink_candidates_only_simplify():
    s = Scenario("fft", 64, 1, 0.5, "awgr", "crossbar", wavelengths=64,
                 keep_dep_fraction=0.9)
    for cand in _shrink_candidates(s):
        assert cand.cores <= s.cores
        assert cand.scale <= s.scale
        assert cand.wavelengths <= s.wavelengths
        assert cand.keep_dep_fraction >= s.keep_dep_fraction
    assert _shrink_candidates(
        Scenario("fft", 4, 1, 0.1, "electrical", "crossbar",
                 wavelengths=16)) == []


def test_write_repro_round_trips_scenario(tmp_path):
    outcome = run_scenario(CHEAP)
    path = write_repro(outcome, tmp_path)
    assert path.exists()
    assert load_repro_scenario(path) == CHEAP


def test_ablated_scenarios_use_naive_error_bound():
    envelope = ErrorEnvelope(max_sc_exec_error_pct=1e-9,
                             max_naive_exec_error_pct=1e9)
    ablated = replace(CHEAP, keep_dep_fraction=0.9)
    outcome = run_scenario(ablated, envelope)
    # With an impossible precision bound but an unbounded naive bound, an
    # ablated scenario must still pass: its model is intentionally degraded.
    assert not outcome.envelope_breaches
    strict = run_scenario(CHEAP, envelope)
    assert strict.envelope_breaches
