"""Circuit-switched optical mesh tests: setup, blocking, teardown."""

from __future__ import annotations

import pytest

from repro.config import OnocConfig
from repro.engine import Simulator
from repro.net import Message
from repro.onoc import CircuitSwitchedMesh


CFG = OnocConfig(topology="circuit_mesh", num_nodes=16)


def run(sends, cfg=CFG, seed=1):
    sim = Simulator(seed=seed)
    net = CircuitSwitchedMesh(sim, cfg)
    done = []
    net.set_delivery_handler(done.append)
    for t, s, d, size in sends:
        sim.schedule(t, net.send, (Message(s, d, size),))
    sim.run()
    return net, done


def test_single_circuit_latency_decomposition():
    net, done = run([(0, 0, 1, 72)])
    m = done[0]
    hops = 1
    setup = (hops + 1) * CFG.setup_router_latency + hops * CFG.setup_link_latency
    ack = hops * CFG.setup_link_latency + 1
    ser = CFG.serialization_cycles(72)
    prop = CFG.propagation_cycles(hops * net.link_length_cm)
    expected = setup + ack + 2 * CFG.conversion_cycles + ser + prop
    assert m.latency == expected


def test_latency_grows_with_hops():
    _, near = run([(0, 0, 1, 72)])
    _, far = run([(0, 0, 15, 72)])
    assert far[0].latency > near[0].latency


def test_blocking_on_shared_segment():
    # Both circuits need link (0 -> 1): 0->3 and 0->2 share it under XY.
    net, done = run([(0, 0, 3, 72), (0, 0, 2, 72)])
    lats = sorted(m.latency for m in done)
    assert lats[1] > lats[0]
    assert net.stats.queueing_delay.max >= 0
    assert net.quiescent()


def test_disjoint_circuits_parallel():
    _, alone = run([(0, 0, 1, 72)])
    _, pair = run([(0, 0, 1, 72), (0, 14, 15, 72)])
    lat_alone = alone[0].latency
    lat_pair = next(m.latency for m in pair if m.src == 0)
    assert lat_pair == lat_alone


def test_teardown_releases_segments():
    net, done = run([(0, 0, 15, 72), (500, 0, 15, 72)])
    assert len(done) == 2
    # Far apart in time: identical latency (no residual reservation).
    assert done[0].latency == done[1].latency
    assert all(seg.holder is None for seg in net.segments.values())


def test_many_random_circuits_drain():
    import numpy as np

    rng = np.random.default_rng(2)
    sends = []
    for i in range(300):
        s, d = int(rng.integers(0, 16)), int(rng.integers(0, 16))
        if s != d:
            sends.append((int(rng.integers(0, 400)), s, d, int(rng.integers(8, 256))))
    net, done = run(sends)
    assert len(done) == len(sends)
    assert net.quiescent()
    assert net.circuits_completed == len(sends)


def test_setup_hops_counted():
    net, _ = run([(0, 0, 5, 72)])  # 0 -> 1 -> 5 under XY: 2 hops
    assert net.setup_hops_total == 2


def test_hop_count_stat_matches_xy():
    net, _ = run([(0, 0, 15, 72)])
    assert net.stats.hop_count.mean == 6


def test_self_send_rejected():
    sim = Simulator()
    net = CircuitSwitchedMesh(sim, CFG)
    with pytest.raises(ValueError, match="self-send"):
        net.send(Message(1, 1, 8))


def test_opposing_flows_no_deadlock():
    """Classic 4-flow ring pattern that deadlocks non-DOR reservation."""
    sends = [
        (0, 0, 3, 720), (0, 3, 15, 720), (0, 15, 12, 720), (0, 12, 0, 720),
        (0, 3, 0, 720), (0, 15, 3, 720), (0, 12, 15, 720), (0, 0, 12, 720),
    ]
    net, done = run(sends)
    assert len(done) == 8
    assert net.quiescent()
