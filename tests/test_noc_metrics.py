"""Link-utilisation analysis tests."""

from __future__ import annotations

import pytest

from repro.config import NocConfig
from repro.engine import Simulator
from repro.net import Message
from repro.noc import ElectricalNetwork
from repro.noc.metrics import analyze_links
from repro.noc.topology import EAST


def run_traffic(sends, cfg=None):
    sim = Simulator(seed=1)
    net = ElectricalNetwork(sim, cfg or NocConfig())
    for t, s, d, size in sends:
        sim.schedule(t, net.send, (Message(s, d, size),))
    sim.run()
    return net, sim.now


def test_requires_positive_cycles():
    net, _ = run_traffic([(0, 0, 1, 16)])
    with pytest.raises(ValueError):
        analyze_links(net, 0)


def test_single_flow_counts():
    net, t = run_traffic([(0, 0, 3, 64)])  # 4 flits, 3 east hops
    rep = analyze_links(net, t)
    assert sum(ld.flits for ld in rep.links) == 12
    assert all(ld.out_port == EAST for ld in rep.links)
    assert rep.max_utilization <= 1.0


def test_hottest_links_sorted():
    sends = [(i, 0, 3, 64) for i in range(0, 40, 4)] + [(0, 4, 5, 16)]
    net, t = run_traffic(sends)
    rep = analyze_links(net, t)
    hot = rep.hottest(3)
    assert hot[0].flits >= hot[1].flits >= hot[2].flits
    assert hot[0].label().endswith("E")


def test_imbalance_uniform_vs_hotspot():
    uniform_sends = [(i, s, d, 32) for i, (s, d) in enumerate(
        (s, d) for s in range(16) for d in range(16) if s != d)]
    hotspot_sends = [(i, s, 0, 32) for i, s in enumerate(range(1, 16))] * 4
    hotspot_sends = [(i, s, 0, 32) for i, (j, s, _, _) in enumerate(hotspot_sends)]
    net_u, t_u = run_traffic(uniform_sends)
    net_h, t_h = run_traffic([(i, s, 0, 32) for i, s in
                              enumerate(list(range(1, 16)) * 4)])
    rep_u = analyze_links(net_u, t_u)
    rep_h = analyze_links(net_h, t_h)
    assert rep_h.imbalance > rep_u.imbalance


def test_bisection_counts_mid_cut_only():
    # 0 -> 3 crosses the 4x4 vertical mid-cut once per flit (x=1 -> x=2).
    net, t = run_traffic([(0, 0, 3, 64)])
    rep = analyze_links(net, t)
    assert rep.bisection_flits == 4
    # 0 -> 1 never crosses it.
    net2, t2 = run_traffic([(0, 0, 1, 64)])
    assert analyze_links(net2, t2).bisection_flits == 0


def test_empty_network_report():
    sim = Simulator(seed=1)
    net = ElectricalNetwork(sim, NocConfig())
    rep = analyze_links(net, 100)
    assert rep.links == []
    assert rep.mean_utilization == 0.0
    assert rep.imbalance == 0.0
