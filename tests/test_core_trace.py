"""Trace artifact tests: validation, queries, serialization."""

from __future__ import annotations

import pytest

from repro.core import EndMarker, Trace, TraceRecord
from repro.core.trace import latencies_by_key


def rec(msg_id, t_inject, t_deliver, cause_id=-1, gap=None, src=0, dst=1,
        kind="req_read", size=8, occ=0):
    if gap is None:
        gap = t_inject if cause_id == -1 else 0
    return TraceRecord(
        msg_id=msg_id,
        key=(src, dst, kind, msg_id, occ),
        src=src, dst=dst, size_bytes=size, kind=kind,
        t_inject=t_inject, t_deliver=t_deliver,
        cause_id=cause_id, gap=gap,
    )


def chain_trace():
    """r0 at t=5, delivered 15; r1 caused by r0, gap 3 -> inject 18."""
    r0 = rec(0, 5, 15)
    r1 = rec(1, 18, 30, cause_id=0, gap=3, src=1, dst=0)
    m = EndMarker(node=0, t_finish=40, cause_id=1, gap=10)
    return Trace(records=[r0, r1], end_markers=[m], exec_time=40)


def test_valid_trace_passes():
    chain_trace().validate()


def test_record_field_validation():
    with pytest.raises(ValueError):
        rec(0, 10, 5)                      # delivered before injected
    with pytest.raises(ValueError):
        TraceRecord(0, (0, 0, "x", 0, 0), 0, 0, 8, "x", 0, 1, -1, 0)  # src==dst
    with pytest.raises(ValueError):
        rec(0, 5, 15, cause_id=3, gap=-1)  # negative gap


def test_missing_cause_detected():
    t = chain_trace()
    t.records[1] = rec(1, 18, 30, cause_id=99, gap=3, src=1, dst=0)
    with pytest.raises(ValueError, match="not in trace"):
        t.validate()


def test_causality_violation_detected():
    r0 = rec(0, 5, 15)
    bad = rec(1, 10, 30, cause_id=0, gap=0, src=1, dst=0)  # injected at 10 < 15
    t = Trace([r0, bad], [], exec_time=0)
    with pytest.raises(ValueError, match="before"):
        t.validate()


def test_gap_inconsistency_detected():
    r0 = rec(0, 5, 15)
    bad = rec(1, 20, 30, cause_id=0, gap=3, src=1, dst=0)  # 15+3 != 20
    t = Trace([r0, bad], [], exec_time=0)
    with pytest.raises(ValueError, match="gap"):
        t.validate()


def test_root_gap_must_equal_inject():
    bad = rec(0, 5, 15)
    object.__setattr__(bad, "gap", 4)
    t = Trace([bad], [], exec_time=0)
    with pytest.raises(ValueError, match="root"):
        t.validate()


def test_duplicate_ids_detected():
    r = rec(0, 5, 15)
    t = Trace([r, r], [], exec_time=0)
    with pytest.raises(ValueError, match="duplicate msg_ids"):
        t.validate()


def test_exec_time_must_match_markers():
    t = chain_trace()
    t.exec_time = 99
    with pytest.raises(ValueError, match="exec_time"):
        t.validate()


def test_roots_and_depth():
    t = chain_trace()
    assert [r.msg_id for r in t.roots()] == [0]
    assert t.dependency_depth() == 2
    assert len(t) == 2
    assert t.bytes_total() == 16


def test_json_roundtrip():
    t = chain_trace()
    t.meta = {"workload": "fft", "seed": 7}
    again = Trace.from_json(t.to_json())
    assert again.exec_time == t.exec_time
    assert again.meta == t.meta
    assert again.records == t.records
    assert again.end_markers == t.end_markers


def test_from_json_validates():
    t = chain_trace()
    text = t.to_json().replace('"exec_time": 40', '"exec_time": 77')
    with pytest.raises(ValueError):
        Trace.from_json(text)


def test_latencies_by_key():
    t = chain_trace()
    lats = latencies_by_key(t.records)
    assert lats[t.records[0].key] == 10
    assert lats[t.records[1].key] == 12


def test_end_marker_validation():
    with pytest.raises(ValueError):
        EndMarker(node=-1, t_finish=5, cause_id=-1, gap=5)
    with pytest.raises(ValueError):
        EndMarker(node=0, t_finish=5, cause_id=-1, gap=-2)
