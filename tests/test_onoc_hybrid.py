"""Path-adaptive hybrid-network tests (extension)."""

from __future__ import annotations

import pytest

from repro.config import NocConfig, OnocConfig, SystemConfig
from repro.engine import Simulator
from repro.net import Message
from repro.onoc import HybridConfig, HybridNetwork
from repro.system import FullSystem, build_workload


def make(threshold=3, seed=1):
    sim = Simulator(seed=seed)
    cfg = HybridConfig(noc=NocConfig(), onoc=OnocConfig(),
                       optical_threshold=threshold)
    return sim, HybridNetwork(sim, cfg)


def run(sends, threshold=3, seed=1):
    sim, net = make(threshold, seed)
    done = []
    net.set_delivery_handler(done.append)
    for t, s, d, size in sends:
        sim.schedule(t, net.send, (Message(s, d, size),))
    sim.run()
    return net, done


def test_config_validation():
    with pytest.raises(ValueError, match="mismatch"):
        HybridConfig(noc=NocConfig(), onoc=OnocConfig(num_nodes=4))
    with pytest.raises(ValueError, match="threshold"):
        HybridConfig(noc=NocConfig(), onoc=OnocConfig(), optical_threshold=-1)


def test_routing_decision_by_distance():
    _, net = make(threshold=3)
    assert not net.route_optical(0, 1)      # 1 hop
    assert not net.route_optical(0, 5)      # 2 hops
    assert net.route_optical(0, 15)         # 6 hops
    assert net.route_optical(0, 3)          # 3 hops == threshold


def test_threshold_zero_all_optical():
    sends = [(0, s, d, 64) for s in range(16) for d in range(16) if s != d]
    net, done = run(sends, threshold=0)
    assert len(done) == len(sends)
    assert net.sent_electrical == 0
    assert net.optical_fraction == 1.0


def test_threshold_above_diameter_all_electrical():
    sends = [(0, s, d, 64) for s in range(16) for d in range(16) if s != d]
    net, done = run(sends, threshold=7)
    assert len(done) == len(sends)
    assert net.sent_optical == 0
    assert net.optical_fraction == 0.0


def test_mixed_threshold_splits_traffic():
    sends = [(0, s, d, 64) for s in range(16) for d in range(16) if s != d]
    net, done = run(sends, threshold=3)
    assert len(done) == len(sends)
    assert net.sent_electrical > 0 and net.sent_optical > 0
    assert net.sent_electrical + net.sent_optical == len(sends)
    assert net.quiescent()


def test_hybrid_stats_are_union_of_layers():
    sends = [(0, 0, 1, 64), (0, 0, 15, 64)]
    net, done = run(sends, threshold=3)
    assert net.stats.messages_delivered == 2
    assert (net.electrical.stats.messages_delivered
            + net.optical.stats.messages_delivered) == 2


def test_long_haul_faster_on_hybrid_than_pure_electrical():
    # 6-hop message: hybrid sends it optically.
    _, hybrid_done = run([(0, 0, 15, 64)], threshold=3)
    from repro.noc import ElectricalNetwork

    sim = Simulator(seed=1)
    elec = ElectricalNetwork(sim, NocConfig())
    done = []
    elec.set_delivery_handler(done.append)
    sim.schedule(0, elec.send, (Message(0, 15, 64),))
    sim.run()
    assert hybrid_done[0].latency < done[0].latency


def test_per_message_callback_fires_once():
    count = []
    sim, net = make()
    msg = Message(0, 15, 64, on_delivery=lambda m: count.append(m.id))
    sim.schedule(0, net.send, (msg,))
    sim.run()
    assert len(count) == 1


def test_full_system_runs_on_hybrid():
    progs = build_workload("fft", 16, seed=7)
    sim, net = make(threshold=3, seed=7)
    system = FullSystem(sim, SystemConfig(), net, progs)
    res = system.run(max_cycles=10_000_000)
    assert res.exec_time_cycles > 0
    assert net.sent_electrical > 0 and net.sent_optical > 0


def test_self_send_rejected():
    sim, net = make()
    with pytest.raises(ValueError, match="self-send"):
        net.send(Message(4, 4, 8))
