"""Per-backend ``in_order_channels`` capability flag and strict-FIFO checks.

The flag declares that a backend delivers same-(src, dst) messages in
injection order, which lets the validation harness hold it to the *strict*
form of the channel-monotonicity invariant.  The settings here were
validated empirically (42 random scenarios, zero strict violations for the
backends claiming True; circuit_mesh and electrical demonstrably reorder).
"""

from __future__ import annotations

import pytest

from repro.core.trace import Trace, TraceRecord
from repro.harness import backend_in_order_channels
from repro.harness.builders import run_execution_driven
from repro.noc.network import ElectricalNetwork
from repro.onoc import topology_in_order_channels
from repro.onoc.awgr import OpticalAwgr
from repro.onoc.circuit import CircuitSwitchedMesh
from repro.onoc.crossbar import OpticalCrossbar
from repro.onoc.hybrid import HybridNetwork
from repro.onoc.swmr import OpticalSwmrCrossbar
from repro.validate import invariants as inv
from repro.validate.scenario import Scenario


# ----------------------------------------------------------- flag values
def test_capability_flags():
    assert OpticalAwgr.in_order_channels
    assert OpticalSwmrCrossbar.in_order_channels
    assert OpticalCrossbar.in_order_channels
    # Segment-waiter re-queuing can reorder same-pair circuits.
    assert not CircuitSwitchedMesh.in_order_channels
    # Wormhole VC arbitration reorders overlapping flights.
    assert not ElectricalNetwork.in_order_channels
    assert not HybridNetwork.in_order_channels


def test_backend_lookup_helpers():
    assert backend_in_order_channels("electrical") is False
    assert backend_in_order_channels("awgr") is True
    assert topology_in_order_channels("circuit_mesh") is False
    with pytest.raises(ValueError):
        topology_in_order_channels("token_ring")
    with pytest.raises(ValueError):
        backend_in_order_channels("carrier_pigeon")


# ------------------------------------------------- strict checker (unit)
def _rec(msg_id, t_inject, t_deliver, src=0, dst=1):
    return TraceRecord(
        msg_id=msg_id, key=(src, dst, "req_read", 0, msg_id), src=src,
        dst=dst, size_bytes=8, kind="req_read", t_inject=t_inject,
        t_deliver=t_deliver, cause_id=-1, gap=t_inject, bound_id=-1,
        bound_gap=0)


def _trace(*records):
    return Trace(records=list(records), end_markers=[], exec_time=0)


def test_strict_flags_overlapping_reorder():
    """Overlapping flights that reorder: legal by default, a violation
    under strict FIFO."""
    trace = _trace(_rec(0, 0, 40), _rec(1, 5, 20))
    assert inv.check_trace(trace) == []
    violations = inv.check_trace(trace, strict_fifo=True)
    assert {v.invariant for v in violations} == {inv.TRACE_CHANNEL_ORDER}
    assert "strict FIFO" in violations[0].message
    assert violations[0].msg_id == 1


def test_strict_passes_in_order_and_exempts_ties():
    ordered = _trace(_rec(0, 0, 10), _rec(1, 5, 20), _rec(2, 12, 30))
    assert inv.check_trace(ordered, strict_fifo=True) == []
    # Same-cycle injections may deliver in either order.
    tied = _trace(_rec(0, 0, 30), _rec(1, 0, 20))
    assert inv.check_trace(tied, strict_fifo=True) == []


def test_strict_is_per_channel():
    """Reordering across *different* channels is never a violation."""
    trace = _trace(_rec(0, 0, 40, src=0, dst=1), _rec(1, 5, 20, src=0, dst=2))
    assert inv.check_trace(trace, strict_fifo=True) == []


def test_strict_replay_check():
    trace = _trace(_rec(0, 0, 40), _rec(1, 5, 50))
    from repro.core.replay import ReplayResult
    result = ReplayResult(
        mode="naive", exec_time_estimate=0,
        latencies_by_key={r.key: 10 for r in trace.records},
        deliveries={0: 40, 1: 10}, injections={0: 0, 1: 5},
        messages_replayed=2, messages_unreplayed=0,
        wall_clock_s=0.0, sim_events=0)
    # deliveries[1]=10 < deliveries[0]=40 with a later injection: an
    # overlapping reorder, visible only to the strict form.
    base = {v.invariant for v in inv.check_replay(trace, result)}
    assert inv.REPLAY_CHANNEL_ORDER not in base
    strict = {v.invariant
              for v in inv.check_replay(trace, result, strict_fifo=True)}
    assert inv.REPLAY_CHANNEL_ORDER in strict


# --------------------------------- circuit_mesh waiter re-queue pinning
def test_circuit_waiter_requeues_at_back_of_fifo():
    """Pin the allocator model behind ``in_order_channels = False``.

    A torn-down segment wakes its head waiter, but the wakeup re-*attempts*
    acquisition rather than receiving a reservation.  If a third circuit
    acquires the freed segment in the same cycle, the woken waiter re-queues
    at the *back* of the segment FIFO — behind a same-pair circuit that
    arrived after it.  This is the documented greedy re-arbitration model
    (docs/METHODOLOGY.md §3); flipping to place-keeping handoff would let
    ``in_order_channels`` be True and must update doc + this test together.
    """
    from repro.config import OnocConfig
    from repro.engine import Simulator
    from repro.net import Message
    from repro.onoc.circuit import CircuitSwitchedMesh, _SetupWalker

    sim = Simulator(seed=1)
    net = CircuitSwitchedMesh(sim, OnocConfig(num_nodes=4))
    path = net._xy_path(0, 3)          # two hops on the 2x2 mesh
    assert len(path) == 2
    seg = net._segment(path[0])

    def walker(cid):
        msg = Message(src=0, dst=3, size_bytes=64)
        msg.inject_time = 0
        return _SetupWalker(cid, msg, list(path))

    # Circuit 1 holds the contended segment; W blocks behind it.
    seg.holder = 1
    w = walker(2)
    net._advance(w)
    assert list(seg.waiters) == [w]

    # Teardown frees the segment and wakes W — but thief V's same-cycle
    # _advance runs first and acquires it (greedy re-arbitration).
    seg.holder = None
    seg.waiters.clear()                # W popped by the teardown wakeup
    v = walker(3)
    net._advance(v)
    assert seg.holder == v.cid

    # A later same-pair circuit X queues before W's re-attempt lands...
    x = walker(4)
    net._advance(x)
    # ...so W, re-attempting, joins the FIFO *behind* X: same-pair reorder.
    net._advance(w)
    assert list(seg.waiters) == [x, w]


# ------------------------------------------- empirical backend behaviour
@pytest.mark.parametrize("topology", ["awgr", "swmr_crossbar", "crossbar"])
def test_in_order_backends_capture_strict_fifo_traces(topology):
    """Every backend claiming in_order_channels produces captures that
    survive the strict check on a real workload."""
    s = Scenario("prodcons", 16, 3, 0.1, "electrical", topology,
                 wavelengths=32)
    _, trace, _ = run_execution_driven(s.experiment(), "prodcons",
                                       "optical", scale=0.1)
    assert trace is not None and len(trace) > 100
    strict = [v for v in inv.check_trace(trace, strict_fifo=True)
              if "strict FIFO" in v.message]
    assert strict == []
