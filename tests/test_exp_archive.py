"""Provenance archive round-trip tests (repro.exp.archive).

An archive directory must be self-describing: the manifest alone carries
everything ``repro exp diff`` needs (experiment, config hash, parameters,
metrics, gate), and a baseline file is just a manifest written standalone.
These tests pin the on-disk layout and the failure modes of loading
damaged or foreign files.
"""

from __future__ import annotations

import json

import pytest

from repro.exp import load_archive, load_rows, provenance, write_archive
from repro.exp.archive import (
    ARCHIVE_SCHEMA,
    ArchiveError,
    archive_dir_name,
    build_manifest,
    git_revision,
    write_baseline,
)
from repro.exp.config import GateSpec, ResolvedConfig


def make_resolved(**params):
    merged = {"cores": 4, "seed": 3, "wavelengths": 16}
    merged.update(params)
    return ResolvedConfig(
        name="unit",
        description="unit fixture",
        experiment="area",
        parameters=merged,
        gate=GateSpec(2.0, {"*.wall_clock_s": None}),
        chain=("base/area.yaml", "unit.yaml"),
        path="unit.yaml",
    )


ROWS = [{"network": "mesh", "total_mm2": 1.5}]
METRICS = {"mesh.total_mm2": 1.5}


# ------------------------------------------------------------- provenance
def test_provenance_block_shape():
    p = provenance()
    assert set(p) == {"git", "host", "platform", "python"}
    assert p["git"]["rev"]  # this repo is git-initialised


def test_git_revision_degrades_outside_a_repo(tmp_path):
    assert git_revision(cwd=tmp_path) == {"rev": "unknown"}


# ------------------------------------------------------ archive round-trip
def test_write_then_load_archive(tmp_path):
    resolved = make_resolved()
    adir = write_archive(
        tmp_path / "a",
        resolved,
        rows=ROWS,
        metrics=METRICS,
        raw_encoded=[{"network": "mesh"}],
        table_text="| mesh |\n",
        sweep_stats={"executed": 1, "cached": 0},
        created=1700000000.0,
    )
    # the four fixed files plus the artifacts dir
    names = {p.name for p in adir.iterdir()}
    assert names == {"manifest.json", "config.resolved.json",
                     "result.json", "metrics.json", "artifacts"}
    assert (adir / "artifacts" / "table.txt").read_text() == "| mesh |\n"

    arch = load_archive(adir)
    assert arch.experiment == "area"
    assert arch.config_hash == resolved.config_hash
    assert arch.parameters == {"cores": 4, "seed": 3, "wavelengths": 16}
    assert arch.metrics == METRICS
    assert arch.gate.default_tolerance_pct == 2.0
    assert arch.gate.tolerance_for("x.wall_clock_s") is None
    assert arch.manifest["sweep"] == {"executed": 1, "cached": 0}
    assert arch.manifest["created_unix"] == 1700000000.0
    assert load_rows(adir) == ROWS


def test_manifest_parameters_are_jsonable(tmp_path):
    # tuple-valued parameters must serialize (and reload as lists)
    resolved = make_resolved(workloads=("fft", "lu"))
    adir = write_archive(tmp_path / "a", resolved, ROWS, METRICS, [], "t")
    arch = load_archive(adir)
    assert arch.parameters["workloads"] == ["fft", "lu"]


def test_baseline_file_round_trip(tmp_path):
    resolved = make_resolved()
    manifest = build_manifest(resolved, METRICS, created=1700000000.0)
    out = tmp_path / "BENCH_exp_unit.json"
    write_baseline(out, manifest)
    arch = load_archive(out)
    assert arch.name == "unit"
    assert arch.config_hash == resolved.config_hash
    assert arch.metrics == METRICS
    # baselines carry no result.json
    with pytest.raises(ArchiveError, match="result.json"):
        load_rows(tmp_path)


def test_archive_dir_name_is_stable():
    resolved = make_resolved()
    name = archive_dir_name(resolved, 1700000000.0)
    assert name == f"unit-{resolved.config_hash[:10]}-20231114T221320"


# ----------------------------------------------------------- failure modes
def test_load_rejects_non_archive_dir(tmp_path):
    with pytest.raises(ArchiveError, match="manifest.json"):
        load_archive(tmp_path)


def test_load_rejects_bad_json(tmp_path):
    f = tmp_path / "m.json"
    f.write_text("{nope")
    with pytest.raises(ArchiveError, match="invalid JSON"):
        load_archive(f)


def test_load_rejects_wrong_schema_version(tmp_path):
    f = tmp_path / "m.json"
    f.write_text(json.dumps({"archive_schema": ARCHIVE_SCHEMA + 1}))
    with pytest.raises(ArchiveError, match="unsupported"):
        load_archive(f)


def test_load_rejects_missing_keys(tmp_path):
    f = tmp_path / "m.json"
    f.write_text(json.dumps(
        {"archive_schema": ARCHIVE_SCHEMA, "name": "x"}))
    with pytest.raises(ArchiveError, match="missing"):
        load_archive(f)
