"""Multi-chunk coverage for the out-of-core replay path (satellite 4).

``stream_naive_summary`` replays a binary trace chunk by chunk with
per-resource carry state; this file pins the part single-chunk tests
cannot see — that the carry actually works.  Three angles: chunking
invariance (the same trace split into many RECORDS chunks summarizes
identically to the single-chunk encoding), agreement with the in-memory
naive generational replay, and a hot-destination trace whose one
contended FIFO spans every chunk boundary.
"""

from __future__ import annotations

import pytest

from repro.config import (
    ONOC_TOPOLOGIES,
    TRACE_NAIVE,
    TraceConfig,
)
from repro.core import replay_trace, stream_naive_summary, tracebin
from repro.core.trace import EndMarker, Trace, TraceRecord
from repro.harness.builders import optical_factory
from repro.synth import default_profile, generate, synth_onoc

NODES = 16
MESSAGES = 3000
CHUNK = 256  # small enough for ~12 chunks at MESSAGES records

SUMMARY_KEYS = ("messages", "bytes", "exec_time_estimate",
                "mean_latency", "max_deliver")


@pytest.fixture(scope="module")
def synth_trace() -> Trace:
    return generate(default_profile(NODES, MESSAGES), seed=5)


def _write_both(trace: Trace, tmp_path):
    single = tmp_path / "single.rtrc"
    multi = tmp_path / "multi.rtrc"
    tracebin.write_file(trace, single)
    tracebin.write_file(trace, multi, chunk_records=CHUNK)
    return single, multi


@pytest.mark.parametrize("topology", ONOC_TOPOLOGIES)
def test_chunking_invisible_to_stream_summary(synth_trace, tmp_path, topology):
    """Chunk size is a container knob: the streaming replay must not see it."""
    single, multi = _write_both(synth_trace, tmp_path)
    onoc = synth_onoc(topology, NODES)
    one = stream_naive_summary(single, onoc)
    many = stream_naive_summary(multi, onoc)
    assert many["chunks"] > 8  # the multi file genuinely exercises carry
    assert one["chunks"] == 1
    for key in SUMMARY_KEYS:
        assert one[key] == many[key], key


@pytest.mark.parametrize("topology", ONOC_TOPOLOGIES)
def test_stream_summary_matches_in_memory_naive(synth_trace, tmp_path,
                                                topology):
    """The streaming scan is a replay, not an approximation: exec estimate,
    mean latency and last delivery must equal the in-memory naive
    generational replay exactly."""
    _, multi = _write_both(synth_trace, tmp_path)
    onoc = synth_onoc(topology, NODES)
    summary = stream_naive_summary(multi, onoc)
    result = replay_trace(
        synth_trace, optical_factory(onoc, 7),
        TraceConfig(mode=TRACE_NAIVE, engine="generational"))
    assert summary["messages"] == len(synth_trace)
    assert summary["bytes"] == sum(
        r.size_bytes for r in synth_trace.records)
    assert summary["exec_time_estimate"] == result.exec_time_estimate
    lats = result.latencies_by_key
    assert summary["mean_latency"] == pytest.approx(
        sum(lats.values()) / len(lats))
    assert summary["max_deliver"] == max(result.deliveries.values())
    assert summary["captured_exec_time"] == synth_trace.exec_time


def _hot_destination_trace(n_records: int) -> Trace:
    """Every message targets node 0: one crossbar FIFO carries occupancy
    across every chunk boundary, and the token/channel carry state is the
    only thing keeping the replay consistent."""
    records = []
    for i in range(n_records):
        t = i * 2
        records.append(TraceRecord(
            msg_id=i, key=(1 + i % (NODES - 1), 0, "data", i, 0),
            src=1 + i % (NODES - 1), dst=0, size_bytes=64, kind="data",
            t_inject=t, t_deliver=t + 12, cause_id=-1, gap=t))
    last = records[-1]
    markers = [EndMarker(0, last.t_deliver + 10, last.msg_id, 10)]
    markers += [EndMarker(node, 0, -1, 0) for node in range(1, NODES)]
    trace = Trace(records=records, end_markers=markers,
                  exec_time=last.t_deliver + 10, meta={"workload": "hot"})
    trace.validate()
    return trace


@pytest.mark.parametrize("topology", ("crossbar", "swmr_crossbar"))
def test_hot_destination_carry_spans_chunks(tmp_path, topology):
    trace = _hot_destination_trace(1200)
    single, multi = _write_both(trace, tmp_path)
    onoc = synth_onoc(topology, NODES)
    one = stream_naive_summary(single, onoc)
    many = stream_naive_summary(multi, onoc)
    assert many["chunks"] >= 4
    for key in SUMMARY_KEYS:
        assert one[key] == many[key], key
    result = replay_trace(
        trace, optical_factory(onoc, 7),
        TraceConfig(mode=TRACE_NAIVE, engine="generational"))
    assert many["exec_time_estimate"] == result.exec_time_estimate
    assert many["max_deliver"] == max(result.deliveries.values())
    if topology == "crossbar":
        # The hot FIFO must actually be backed up — mean latency far above
        # the captured 12 cycles — or this test exercises nothing.  (On
        # swmr_crossbar the FIFO resource is the *source*, which rotates,
        # so the same trace is contention-free there by design.)
        assert many["mean_latency"] > 10 * 12


def test_tiny_chunks_still_agree(synth_trace, tmp_path):
    """chunk_records=64 -> ~47 chunks: resources cross dozens of borders."""
    path = tmp_path / "tiny.rtrc"
    tracebin.write_file(synth_trace, path, chunk_records=64)
    onoc = synth_onoc("crossbar", NODES)
    tiny = stream_naive_summary(path, onoc)
    single = tracebin.dumps(synth_trace)
    ref_path = tmp_path / "ref.rtrc"
    ref_path.write_bytes(single)
    ref = stream_naive_summary(ref_path, onoc)
    assert tiny["chunks"] > 40
    for key in SUMMARY_KEYS:
        assert tiny[key] == ref[key], key
