"""Smoke tests: every example script must run cleanly end to end.

These execute the real scripts in subprocesses (same interpreter) so import
errors, stale APIs, or broken output formatting in examples fail CI rather
than the first user.
"""

from __future__ import annotations

import pathlib
import subprocess
import sys


EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str, *args: str, timeout: int = 300) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout,
    )
    assert proc.returncode == 0, (
        f"{name} failed:\nstdout:\n{proc.stdout}\nstderr:\n{proc.stderr}"
    )
    return proc.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "self_correcting replay" in out
    assert "error" in out


def test_trace_inspection():
    out = run_example("trace_inspection.py", "prodcons")
    assert "Trace profile" in out
    assert "Line sharing classification" in out
    assert "round-trip exact" in out


def test_case_study_single_workload():
    out = run_example("case_study_onoc.py", "randshare")
    assert "speedup" in out
    assert "Energy over the run" in out


def test_design_space_exploration():
    out = run_example("design_space_exploration.py")
    assert "design point" in out
    assert "passive AWGR" in out
    assert "error_%" in out
