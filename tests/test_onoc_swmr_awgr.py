"""SWMR crossbar and passive AWGR tests (extension architectures)."""

from __future__ import annotations

import pytest

from repro.config import ConfigError, OnocConfig
from repro.engine import Simulator
from repro.net import Message
from repro.onoc import (
    OpticalAwgr,
    OpticalSwmrCrossbar,
    awgr_ring_census,
    build_optical_network,
    swmr_ring_census,
)
from repro.power import optical_energy_report
from repro.system import FullSystem, build_workload
from repro.config import SystemConfig


def run(net_cls, sends, cfg=None, seed=1):
    sim = Simulator(seed=seed)
    net = net_cls(sim, cfg or OnocConfig())
    done = []
    net.set_delivery_handler(done.append)
    for t, s, d, size in sends:
        sim.schedule(t, net.send, (Message(s, d, size),))
    sim.run()
    return net, done


# ------------------------------------------------------------------- SWMR
def test_swmr_no_arbitration_latency():
    cfg = OnocConfig(topology="swmr_crossbar")
    net, done = run(OpticalSwmrCrossbar, [(0, 0, 1, 72)], cfg)
    m = done[0]
    ser = cfg.serialization_cycles(72)
    prop = cfg.propagation_cycles(net.layout.distance_cm(0, 1))
    # No token travel: just serialize + propagate + convert.
    assert m.latency == ser + prop + 2 * cfg.conversion_cycles


def test_swmr_source_fanout_serializes():
    """One writer bursting to many destinations serializes on its channel —
    the mirror image of MWSR's destination hotspot."""
    cfg = OnocConfig(topology="swmr_crossbar")
    sends = [(0, 0, d, 720) for d in range(1, 9)]
    net, done = run(OpticalSwmrCrossbar, sends, cfg)
    lats = sorted(m.latency for m in done)
    ser = cfg.serialization_cycles(720)
    assert lats[-1] >= 7 * ser  # eighth message waited for seven serializations


def test_swmr_destination_fanin_parallel():
    """Many writers to one destination do NOT serialize (each uses its own
    channel) — the opposite of the MWSR crossbar."""
    cfg = OnocConfig(topology="swmr_crossbar")
    sends = [(0, s, 15, 720) for s in range(8)]
    _, done = run(OpticalSwmrCrossbar, sends, cfg)
    lats = [m.latency for m in done]
    ser = cfg.serialization_cycles(720)
    # every message finishes within ~one serialization + propagation
    assert max(lats) < 2 * ser + 60


def test_swmr_census():
    c = swmr_ring_census(16, 64)
    assert c.modulator_rings == 16 * 64
    assert c.detector_rings == 16 * 15 * 64
    with pytest.raises(ValueError):
        swmr_ring_census(1, 64)


def test_swmr_factory_and_power():
    cfg = OnocConfig(topology="swmr_crossbar")
    sim = Simulator(seed=1)
    net = build_optical_network(sim, cfg)
    assert isinstance(net, OpticalSwmrCrossbar)
    sim.schedule(0, net.send, (Message(0, 1, 72),))
    sim.run()
    rep = optical_energy_report(net, sim.now)
    assert rep.static_mw["laser"] > 0
    assert "swmr" in rep.name


# ------------------------------------------------------------------- AWGR
def test_awgr_requires_enough_wavelengths():
    with pytest.raises(ConfigError, match="awgr"):
        OnocConfig(topology="awgr", num_nodes=16, num_wavelengths=8)


def test_awgr_no_contention_across_pairs():
    cfg = OnocConfig(topology="awgr")
    sends = [(0, s, (s + 1) % 16, 720) for s in range(16) if s != (s + 1) % 16]
    net, done = run(OpticalAwgr, sends, cfg)
    lats = [m.latency for m in done]
    # all disjoint (src,dst) pairs: zero queueing anywhere
    assert net.stats.queueing_delay.max == 0
    assert len(done) == len(sends)


def test_awgr_lane_serialization_slower_than_crossbar():
    cfg = OnocConfig(topology="awgr")
    sim = Simulator(seed=1)
    net = OpticalAwgr(sim, cfg)
    # 64 λ / 15 lanes = 4 λ per lane -> 16x slower than the full channel.
    assert net.lanes_per_pair == 4
    assert net.lane_serialization_cycles(720) > cfg.serialization_cycles(720)


def test_awgr_same_pair_fifo():
    cfg = OnocConfig(topology="awgr")
    sim = Simulator(seed=1)
    net = OpticalAwgr(sim, cfg)
    order = []
    for k in range(4):
        m = Message(0, 1, 720, payload=k,
                    on_delivery=lambda m: order.append(m.payload))
        sim.schedule(0, net.send, (m,))
    sim.run()
    assert order == [0, 1, 2, 3]
    assert net.quiescent()


def test_awgr_census_passive():
    c = awgr_ring_census(16, 64)
    assert c.switch_rings == 0
    assert c.total == 2 * 16 * 64


def test_awgr_factory_and_power():
    cfg = OnocConfig(topology="awgr")
    sim = Simulator(seed=1)
    net = build_optical_network(sim, cfg)
    assert isinstance(net, OpticalAwgr)
    sim.schedule(0, net.send, (Message(0, 5, 72),))
    sim.run()
    rep = optical_energy_report(net, sim.now)
    assert "awgr" in rep.name
    # passive fabric: far fewer rings to tune than the MWSR crossbar
    from repro.onoc import crossbar_ring_census

    assert (awgr_ring_census(16, 64).total
            < crossbar_ring_census(16, 64).total)


# -------------------------------------------------------- full-system runs
@pytest.mark.parametrize("topology", ["swmr_crossbar", "awgr"])
def test_full_system_runs_on_extension_networks(topology):
    cfg = OnocConfig(topology=topology)
    progs = build_workload("randshare", 16, seed=7)
    sim = Simulator(seed=7)
    net = build_optical_network(sim, cfg)
    system = FullSystem(sim, SystemConfig(), net, progs)
    res = system.run(max_cycles=10_000_000)
    assert res.exec_time_cycles > 0
    assert res.messages > 0
