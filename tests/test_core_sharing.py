"""Sharing-pattern classifier tests."""

from __future__ import annotations

import pytest

from repro.config import (
    CacheConfig,
    ExperimentConfig,
    NocConfig,
    OnocConfig,
    SystemConfig,
)
from repro.core import SharingClass, Trace, TraceRecord, classify_lines, sharing_summary
from repro.harness import run_execution_driven


def req(mid, src, line, write, t):
    kind = "req_write" if write else "req_read"
    home = line % 4
    dst = home if home != src else (home + 1) % 4
    return TraceRecord(
        msg_id=mid, key=(src, dst, kind, line, mid), src=src, dst=dst,
        size_bytes=8, kind=kind, t_inject=t, t_deliver=t + 10,
        cause_id=-1, gap=t)


def make_trace(records):
    t = Trace(records=records, end_markers=[], exec_time=0)
    t.validate()
    return t


def classify_one(records, line):
    return classify_lines(make_trace(records))[line].sharing_class


def test_private_line():
    recs = [req(0, 1, 10, False, 0), req(1, 1, 10, True, 20)]
    assert classify_one(recs, 10) == SharingClass.PRIVATE


def test_read_only_line():
    recs = [req(i, i, 10, False, i * 10) for i in range(3)]
    assert classify_one(recs, 10) == SharingClass.READ_ONLY


def test_single_core_write_and_read_is_private():
    recs = [req(0, 2, 10, True, 0), req(1, 2, 10, False, 20)]
    assert classify_one(recs, 10) == SharingClass.PRIVATE


def test_producer_consumer():
    recs = [req(0, 0, 10, True, 0),
            req(1, 1, 10, False, 20),
            req(2, 2, 10, False, 40),
            req(3, 0, 10, True, 60)]
    assert classify_one(recs, 10) == SharingClass.PRODUCER_CONSUMER


def test_migratory():
    recs = [req(i, i % 3, 10, True, i * 10) for i in range(6)]
    assert classify_one(recs, 10) == SharingClass.MIGRATORY


def test_lines_classified_independently():
    recs = [req(0, 0, 10, True, 0), req(1, 1, 11, False, 5),
            req(2, 2, 11, False, 15)]
    out = classify_lines(make_trace(recs))
    assert out[10].sharing_class == SharingClass.PRIVATE
    assert out[11].sharing_class == SharingClass.READ_ONLY


def test_counts_tracked():
    recs = [req(0, 0, 10, True, 0), req(1, 1, 10, False, 20),
            req(2, 1, 10, False, 40)]
    info = classify_lines(make_trace(recs))[10]
    assert info.reads == 2 and info.writes == 1
    assert info.readers == frozenset({1})
    assert info.writers == frozenset({0})


def test_summary_shape():
    recs = [req(0, 0, 10, True, 0), req(1, 1, 11, False, 5)]
    summary = sharing_summary(make_trace(recs))
    assert set(summary) == {c.value for c in SharingClass}
    assert sum(summary.values()) == 2


@pytest.mark.parametrize("workload,expected_class", [
    ("prodcons", SharingClass.PRODUCER_CONSUMER),
    ("randshare", SharingClass.MIGRATORY),
])
def test_real_workloads_show_expected_patterns(workload, expected_class):
    exp = ExperimentConfig(
        system=SystemConfig(
            num_cores=4,
            l1=CacheConfig(size_bytes=1024, assoc=2, line_bytes=64, hit_latency=1),
            l2_slice=CacheConfig(size_bytes=4096, assoc=4, line_bytes=64, hit_latency=4),
            mem_latency=30, num_mem_ctrls=2,
        ),
        noc=NocConfig(width=2, height=2),
        onoc=OnocConfig(num_nodes=4, num_wavelengths=16),
        seed=5,
    )
    _, trace, _ = run_execution_driven(exp, workload, "electrical")
    summary = sharing_summary(trace)
    assert summary[expected_class.value] > 0, summary
