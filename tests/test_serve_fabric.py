"""Multi-node fabric tests: an in-process 3-node asyncio cluster.

Every test boots real :class:`SimulationServer` nodes on ephemeral ports
inside one event loop — real sockets, real gossip, real forwarding — and
drives them with real clients.  Pinned here, per the PR acceptance
criteria:

* gossip membership converges from seed peers (a joiner that knows one
  node learns the whole fabric, and the fabric learns it);
* results are byte-identical no matter which node receives the submit
  (forwarding relays the owner's stream verbatim);
* 50 concurrent duplicates entering through *different* nodes coalesce
  onto exactly one execution (cross-node single-flight);
* peer-fetch answers an owner's cache miss from another node's cache
  instead of recomputing, with the hit/miss accounting visible both in
  service stats and the per-node obs counters;
* the hot LRU tier short-circuits repeat submits on any node, including
  the forwarding (non-owner) node, whose LRU is warmed by relayed results.

Chaos (kill/restart/drain under churn) lives in ``test_serve_chaos.py``.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro import obs
from repro.harness import encode_value, task
from repro.harness.parallel import _execute_encoded
from repro.serve import AsyncServeClient, SimulationServer
from repro.serve import protocol as P
from repro.serve.ops import echo

CLUSTER = 3
CONVERGE_TIMEOUT_S = 10.0


async def start_cluster(n: int = CLUSTER, tmp_path=None, **server_kw):
    """Boot ``n`` nodes; each joins through node 0 and gossip does the rest.

    Returns the servers, membership-converged (every node sees all ``n``
    members).  Node ids are ``n0..n{n-1}``; per-node on-disk caches live
    under ``tmp_path/node<i>`` when a tmp_path is given.
    """
    servers: list[SimulationServer] = []
    for i in range(n):
        kw = dict(server_kw)
        if tmp_path is not None and "cache_dir" not in kw:
            kw["cache_dir"] = str(tmp_path / f"node{i}")
        server = SimulationServer(
            port=0, node_id=f"n{i}",
            peers=[f"127.0.0.1:{servers[0].port}"] if servers else [],
            **kw)
        await server.start()
        servers.append(server)
    await converge(servers)
    return servers


async def converge(servers, n: int | None = None,
                   timeout_s: float = CONVERGE_TIMEOUT_S) -> None:
    """Wait until every node's membership holds all ``n`` members."""
    want = n if n is not None else len(servers)

    async def _wait():
        while any(len(s.membership.members) != want for s in servers):
            await asyncio.sleep(0.01)

    try:
        await asyncio.wait_for(_wait(), timeout_s)
    except asyncio.TimeoutError:  # pragma: no cover - diagnostics
        views = {s.node_id: s.membership.view() for s in servers}
        pytest.fail(f"membership failed to converge to {want}: {views}")


async def stop_cluster(servers) -> None:
    for s in servers:
        await s.aclose()


def fabric_run(body, n: int = CLUSTER, tmp_path=None, **server_kw):
    """Run async ``body(servers)`` against a fresh converged cluster."""

    async def _main():
        servers = await start_cluster(n=n, tmp_path=tmp_path,
                                      **server_kw)
        try:
            return await body(servers)
        finally:
            await stop_cluster(servers)

    return asyncio.run(_main())


def _canon(value) -> str:
    return json.dumps(encode_value(value), sort_keys=True)


def _local(payload, **kwargs) -> str:
    t = task(echo, payload, **kwargs)
    return json.dumps(_execute_encoded(t.fn, t.args, t.kwargs, False),
                      sort_keys=True)


def _key_on(server, payload, **kwargs) -> str:
    """The content key ``server`` computes for an echo submit."""
    t = server._canonical_task({
        "fn": "echo", "args": encode_value((payload,)),
        "kwargs": encode_value(kwargs)})
    return t.cache_key(server.salt + obs.cache_token())


def payload_owned_by(server, node_id: str, tag: str, **kwargs):
    """An echo payload whose content key the ring places on ``node_id``."""
    for i in range(512):
        payload = {"tag": tag, "i": i}
        if server.membership.owner(_key_on(server, payload,
                                           **kwargs)) == node_id:
            return payload
    raise AssertionError(f"no payload found owned by {node_id}")


# ---------------------------------------------------------- membership
def test_gossip_converges_from_single_seed(tmp_path):
    """n1 and n2 only seed-know n0, yet every node ends up with the full
    member view at the same version-agnostic membership, and status()
    reports it."""

    async def body(servers):
        views = {s.node_id: s.membership.view() for s in servers}
        assert len(set(map(json.dumps, views.values()))) == 1
        assert sorted(n for n, _ in views["n0"]) == ["n0", "n1", "n2"]
        async with await AsyncServeClient.connect(
                port=servers[2].port) as c:
            status = await c.status()
        assert status["node"] == "n2"
        assert sorted(n for n, _ in status["members"]) == ["n0", "n1", "n2"]
        # Placement agreement: every node routes every key identically.
        for i in range(32):
            key = _key_on(servers[0], {"k": i})
            owners = {s.membership.owner(key) for s in servers}
            assert len(owners) == 1

    fabric_run(body, tmp_path=tmp_path, workers=1)


def test_join_retries_seed_that_starts_later(tmp_path):
    """Simultaneous starts race their listeners: a joiner whose seed is
    not accepting yet must keep knocking instead of silently partitioning
    the fabric (the seed never joins anyone, so it would otherwise never
    learn about the joiner)."""

    async def body():
        # Reserve a port for the seed, then release it so the joiner's
        # first announcement targets a dead address.
        import socket
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        seed_port = probe.getsockname()[1]
        probe.close()

        joiner = SimulationServer(
            port=0, node_id="n1", workers=1,
            cache_dir=str(tmp_path / "joiner"),
            peers=[f"127.0.0.1:{seed_port}"])
        await joiner.start()
        seed = None
        try:
            assert sorted(joiner.membership.members) == ["n1"]
            await asyncio.sleep(0.1)        # joiner is up, seed is not
            seed = SimulationServer(
                port=seed_port, node_id="n0", workers=1,
                cache_dir=str(tmp_path / "seed"))
            await seed.start()
            await converge([seed, joiner])
            for s in (seed, joiner):
                assert sorted(s.membership.members) == ["n0", "n1"]
            # The healed fabric routes: a key owned by the seed, entered
            # through the joiner, is forwarded and executed there.
            payload = payload_owned_by(joiner, "n0", "late-seed")
            async with await AsyncServeClient.connect(
                    port=joiner.port) as c:
                assert await c.submit("echo", payload) == payload
            assert joiner.table.stats.forwarded == 1
            assert seed.table.stats.executed == 1
        finally:
            if seed is not None:
                await seed.aclose()
            await joiner.aclose()

    asyncio.run(body())


# -------------------------------------------- byte-identity of routing
def test_results_byte_identical_regardless_of_entry_node(tmp_path):
    """The same submit through each of the 3 nodes returns byte-identical
    results — identical to the local execution — while only one node ever
    executes (the other entries forward or hit a warmed cache)."""
    payloads = [{"route": r} for r in range(6)]

    async def body(servers):
        clients = [await AsyncServeClient.connect(port=s.port)
                   for s in servers]
        try:
            results = {}
            for p_idx, payload in enumerate(payloads):
                for c_idx, c in enumerate(clients):
                    results[(p_idx, c_idx)] = await c.submit("echo", payload)
            stats = [dict(s.table.stats.as_dict()) for s in servers]
        finally:
            for c in clients:
                await c.close()
        return results, stats

    results, stats = fabric_run(body, tmp_path=tmp_path, workers=1)

    for p_idx, payload in enumerate(payloads):
        local = _local(payload)
        for c_idx in range(CLUSTER):
            assert _canon(results[(p_idx, c_idx)]) == local

    # One execution per distinct payload across the whole fabric; the
    # other 12 entries were forwards, LRU hits, or cache hits.
    assert sum(s["executed"] for s in stats) == len(payloads)
    assert sum(s["forwarded"] for s in stats) >= 1
    assert sum(s["failed"] for s in stats) == 0


def test_forwarded_stream_is_tagged_via(tmp_path):
    """A forwarded submit's events reach the client tagged with the
    forwarding node (via), proving the stream really was relayed."""

    async def body(servers):
        entry = servers[1]
        payload = payload_owned_by(entry, "n0", "via-test")
        assert entry.membership.owner(_key_on(entry, payload)) == "n0"
        events = []
        async with await AsyncServeClient.connect(port=entry.port) as c:
            result = await c.submit("echo", payload, quiet=False,
                                    on_event=events.append)
        assert result == payload
        assert events and all(e.get("via") == "n1" for e in events)
        assert servers[1].table.stats.forwarded == 1
        assert servers[0].table.stats.executed == 1

    fabric_run(body, tmp_path=tmp_path, workers=1)


# ------------------------------------------------ cross-node dedup
def test_fifty_cross_node_duplicates_execute_once(tmp_path):
    """50 concurrent duplicates of one payload, fanned across all three
    nodes' clients, coalesce onto a single execution: non-owners forward,
    the owner's job table absorbs every arrival in flight."""
    payload = {"dedup": "everywhere"}
    sleep_s = 0.4

    async def body(servers):
        clients = [await AsyncServeClient.connect(port=s.port)
                   for s in servers]
        try:
            results = await asyncio.gather(*[
                clients[i % CLUSTER].submit("echo", payload,
                                            sleep_s=sleep_s)
                for i in range(50)])
            stats = [dict(s.table.stats.as_dict()) for s in servers]
        finally:
            for c in clients:
                await c.close()
        return results, stats

    results, stats = fabric_run(body, tmp_path=tmp_path, workers=2,
                                max_pending=64)

    local = _local(payload, sleep_s=sleep_s)
    assert len(results) == 50
    assert all(_canon(r) == local for r in results)

    total = {k: sum(s[k] for s in stats) for k in stats[0]}
    # Exactly one execution fabric-wide; every other arrival was absorbed
    # without a worker — coalesced in flight (dedup), or answered by a
    # cache tier if it raced past completion.  Every submit is accounted
    # for as exactly one of: job creation, dedup hit, or LRU hit; and
    # every created job resolved without recomputing.
    assert total["executed"] == 1
    assert total["submitted"] + total["dedup_hits"] + total["lru_hits"] == 50
    assert (total["executed"] + total["cache_hits"]
            + total["peer_fetch_hits"]) == total["submitted"]
    assert total["dedup_hits"] >= 1
    assert total["shed"] == 0 and total["failed"] == 0


# ------------------------------------------------- two-tier + peer-fetch
def test_lru_warms_on_forwarding_node(tmp_path):
    """After a forwarded submit completes, the *forwarding* node answers a
    repeat from its hot LRU — no second forward, no execution anywhere."""

    async def body(servers):
        entry = servers[2]
        payload = payload_owned_by(entry, "n0", "lru-warm")
        async with await AsyncServeClient.connect(port=entry.port) as c:
            first = await c.submit("echo", payload)
            forwarded = entry.table.stats.forwarded
            second = await c.submit("echo", payload)
        assert _canon(first) == _canon(second) == _local(payload)
        assert entry.table.stats.forwarded == forwarded  # no re-forward
        assert entry.table.stats.lru_hits == 1
        assert sum(s.table.stats.executed for s in servers) == 1

    fabric_run(body, tmp_path=tmp_path, workers=1)


def test_peer_fetch_hit_vs_recompute_accounting(tmp_path):
    """A node that becomes owner of a key another node already computed
    answers by peer-fetch, not recompute; a genuinely novel key is a
    peer-fetch miss and executes.  Both paths are visible in the service
    stats and the per-node obs counters (serve.<node>.peer_fetch_*)."""
    obs.enable(True)
    obs.reset()
    try:
        async def body():
            # Stage 1: a lone node computes some payloads.
            first = SimulationServer(port=0, node_id="n0", workers=1,
                                     cache_dir=str(tmp_path / "node0"))
            await first.start()
            payloads = [{"pf": i} for i in range(24)]
            async with await AsyncServeClient.connect(
                    port=first.port) as c:
                for p in payloads:
                    await c.submit("echo", p)
            assert first.table.stats.executed == len(payloads)
            # Evict n0's hot tier so the later fetch exercises the disk
            # tier on the answering side too.
            first.lru.clear()

            # Stage 2: a second node joins; it now owns some of those keys.
            second = SimulationServer(
                port=0, node_id="n1", workers=1,
                cache_dir=str(tmp_path / "node1"),
                peers=[f"127.0.0.1:{first.port}"])
            await second.start()
            await converge([first, second])
            try:
                owned = [p for p in payloads
                         if second.membership.owner(
                             _key_on(second, p)) == "n1"]
                assert owned, "ring placed nothing on the joiner"
                hit_payload = owned[0]
                miss_payload = payload_owned_by(second, "n1", "novel")

                async with await AsyncServeClient.connect(
                        port=second.port) as c:
                    fetched = await c.submit("echo", hit_payload)
                    fresh = await c.submit("echo", miss_payload)
                assert fetched == hit_payload and fresh == miss_payload

                stats = second.table.stats
                assert stats.peer_fetch_hits == 1
                assert stats.peer_fetch_misses == 1
                assert stats.executed == 1          # only the novel key
                # The peer-fetched result was re-homed into both of the
                # owner's tiers.
                key = _key_on(second, hit_payload)
                assert second.cache.load(key) is not None
                assert second.lru.get(key) is not None

                snap = obs.registry().snapshot()
                assert snap["serve.n1.peer_fetch_hits"]["value"] == 1
                assert snap["serve.n1.peer_fetch_misses"]["value"] == 1
                # The answering node registered its own counters but never
                # fetched anything itself.
                assert snap["serve.n0.peer_fetch_hits"]["value"] == 0
            finally:
                await second.aclose()
                await first.aclose()

        asyncio.run(body())
    finally:
        obs.enable(False)
        obs.reset()


def test_obs_counters_per_node_forward_and_lru(tmp_path):
    """The per-node obs counters (forwarded, lru_hits) attribute fabric
    traffic to the node that did the work, named serve.<node_id>.*."""
    obs.enable(True)
    obs.reset()
    try:
        async def body(servers):
            entry = servers[1]
            payload = payload_owned_by(entry, "n2", "obs-fwd")
            async with await AsyncServeClient.connect(
                    port=entry.port) as c:
                await c.submit("echo", payload)
                await c.submit("echo", payload)     # hot LRU repeat
            snap = obs.registry().snapshot()
            assert snap["serve.n1.forwarded"]["value"] == 1
            assert snap["serve.n1.lru_hits"]["value"] == 1
            assert snap["serve.n2.forwarded"]["value"] == 0
            assert snap["serve.n0.lru_hits"]["value"] == 0

        fabric_run(body, tmp_path=tmp_path, workers=1)
    finally:
        obs.enable(False)
        obs.reset()


def test_single_node_fabric_is_plain_server(tmp_path):
    """A fabric of one (no peers) behaves exactly like the pre-fabric
    server: no forwards, no peer fetches, same byte-identical results."""

    async def body(servers):
        (server,) = servers
        payload = {"solo": True}
        async with await AsyncServeClient.connect(port=server.port) as c:
            first = await c.submit("echo", payload)
            second = await c.submit("echo", payload)
        assert _canon(first) == _canon(second) == _local(payload)
        stats = server.table.stats
        assert stats.executed == 1 and stats.lru_hits == 1
        assert stats.forwarded == 0
        assert stats.peer_fetch_hits == 0 and stats.peer_fetch_misses == 0
        assert server.membership.view() == [
            ["n0", f"127.0.0.1:{server.port}"]]

    fabric_run(body, n=1, tmp_path=tmp_path, workers=1)
