"""Adversarial Trace.to_json / from_json round-trip coverage (satellite 3).

The serializer is trusted by the golden corpus (byte-identical regen) and by
every CLI workflow, so this file pins its behavior on the edges: empty
traces, single roots, hand-corrupted payloads that must be *rejected* on
load, and byte-level stability of the canonical form.
"""

from __future__ import annotations

import json

import pytest

from repro.core.trace import EndMarker, Trace, TraceRecord


def _rec(msg_id, t_inject, t_deliver, cause_id=-1, gap=None, occ=None,
         src=0, dst=1, bound_id=-1, bound_gap=0):
    if gap is None:
        gap = t_inject if cause_id == -1 else 0
    return TraceRecord(
        msg_id=msg_id, key=(src, dst, "req_read", 0,
                            msg_id if occ is None else occ),
        src=src, dst=dst, size_bytes=8, kind="req_read",
        t_inject=t_inject, t_deliver=t_deliver, cause_id=cause_id, gap=gap,
        bound_id=bound_id, bound_gap=bound_gap)


def test_empty_trace_round_trips():
    trace = Trace(records=[], end_markers=[], exec_time=0,
                  meta={"workload": "none"})
    back = Trace.from_json(trace.to_json())
    assert len(back) == 0
    assert back.exec_time == 0
    assert back.meta == {"workload": "none"}
    assert back.to_json() == trace.to_json()


def test_single_root_round_trips_exactly():
    trace = Trace(records=[_rec(0, 3, 9)],
                  end_markers=[EndMarker(0, 12, 0, 3)], exec_time=12)
    back = Trace.from_json(trace.to_json())
    assert back.records == trace.records
    assert back.end_markers == trace.end_markers
    assert back.to_json() == trace.to_json()


def test_bound_edges_round_trip():
    r0 = _rec(0, 0, 10)
    r1 = _rec(1, 2, 8, occ=1)
    r2 = _rec(2, 12, 20, cause_id=0, gap=2, bound_id=1, bound_gap=4, occ=2)
    trace = Trace(records=[r0, r1, r2], end_markers=[], exec_time=0)
    back = Trace.from_json(trace.to_json())
    assert back.records[2].bound_id == 1
    assert back.records[2].bound_gap == 4


def test_legacy_ten_column_rows_load_without_bound_edges():
    trace = Trace(records=[_rec(0, 3, 9)], end_markers=[], exec_time=0)
    obj = json.loads(trace.to_json())
    obj["records"] = [row[:10] for row in obj["records"]]
    back = Trace.from_json(json.dumps(obj))
    assert back.records[0].bound_id == -1
    assert back.records[0].bound_gap == 0


def test_duplicate_semantic_keys_rejected_on_load():
    trace = Trace(records=[_rec(0, 0, 5), _rec(1, 1, 6, occ=1)],
                  end_markers=[], exec_time=0)
    obj = json.loads(trace.to_json())
    obj["records"][1][1] = obj["records"][0][1]  # clone record 0's key
    with pytest.raises(ValueError, match="duplicate semantic keys"):
        Trace.from_json(json.dumps(obj))


def test_duplicate_msg_ids_rejected_on_load():
    trace = Trace(records=[_rec(0, 0, 5), _rec(1, 1, 6, occ=1)],
                  end_markers=[], exec_time=0)
    obj = json.loads(trace.to_json())
    obj["records"][1][0] = 0
    with pytest.raises(ValueError, match="duplicate msg_ids"):
        Trace.from_json(json.dumps(obj))


def test_negative_gap_rejected_on_load():
    trace = Trace(records=[_rec(0, 5, 9)], end_markers=[], exec_time=0)
    obj = json.loads(trace.to_json())
    obj["records"][0][9] = -5  # gap column
    with pytest.raises(ValueError, match="negative gap"):
        Trace.from_json(json.dumps(obj))


def test_dangling_cause_rejected_on_load():
    trace = Trace(records=[_rec(0, 0, 5), _rec(1, 6, 9, cause_id=0, gap=1,
                                               occ=1)],
                  end_markers=[], exec_time=0)
    obj = json.loads(trace.to_json())
    obj["records"][1][8] = 42  # cause column -> missing id
    with pytest.raises(ValueError, match="not in trace"):
        Trace.from_json(json.dumps(obj))


def test_zero_latency_dependency_cycle_rejected_on_load():
    # Per-edge causality balances (all gaps 0, all timestamps equal) but the
    # dependency graph has no schedulable root — must be rejected.
    trace = Trace(records=[_rec(0, 5, 5), _rec(1, 5, 5, occ=1)],
                  end_markers=[], exec_time=0)
    obj = json.loads(trace.to_json())
    obj["records"][0][8] = 1  # 0 caused by 1
    obj["records"][0][9] = 0
    obj["records"][1][8] = 0  # 1 caused by 0
    obj["records"][1][9] = 0
    with pytest.raises(ValueError, match="dependency cycle"):
        Trace.from_json(json.dumps(obj))


def test_delivery_before_injection_rejected_on_load():
    trace = Trace(records=[_rec(0, 5, 9)], end_markers=[], exec_time=0)
    obj = json.loads(trace.to_json())
    obj["records"][0][7] = 2  # t_deliver < t_inject
    with pytest.raises(ValueError):
        Trace.from_json(json.dumps(obj))


def test_inconsistent_exec_time_rejected_on_load():
    trace = Trace(records=[_rec(0, 3, 9)],
                  end_markers=[EndMarker(0, 12, 0, 3)], exec_time=12)
    obj = json.loads(trace.to_json())
    obj["exec_time"] = 9999
    with pytest.raises(ValueError, match="exec_time"):
        Trace.from_json(json.dumps(obj))


def test_serialization_is_byte_stable():
    trace = Trace(records=[_rec(0, 0, 10), _rec(1, 12, 20, cause_id=0,
                                                gap=2, occ=1)],
                  end_markers=[EndMarker(0, 25, 1, 5)], exec_time=25,
                  meta={"seed": 1, "workload": "x"})
    assert trace.to_json() == Trace.from_json(trace.to_json()).to_json()
    assert trace.to_json() == trace.to_json()
