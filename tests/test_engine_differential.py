"""Generational vs event-driven replay: per-commit differential subset.

The full 40-cell matrix (all gap policies + the fault slice) backs
``repro validate --engines`` and the CI validation leg; this file runs the
fast subset on every commit plus targeted unit checks of the generational
engine's contract — exact schedule equality where the windowed solver
promises it, envelope-level equality everywhere else, and the dispatch
rules around ``TraceConfig.engine``.
"""

from __future__ import annotations

import dataclasses
import pathlib

import pytest

from repro.config import (
    ENGINE_GENERATIONAL,
    ONOC_TOPOLOGIES,
    OnocConfig,
    TRACE_NAIVE,
    TRACE_SELF_CORRECTING,
    TraceConfig,
)
from repro.core import Trace, replay_trace
from repro.core.trace import EndMarker, TraceRecord
from repro.harness.builders import electrical_factory, optical_factory
from repro.validate.engines import check_engines
from repro.validate.golden import GOLDEN_SCENARIOS, _trace_path

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"
NODES = 16


def test_fast_engine_differential_passes():
    """One naive + two self-correcting cells per golden scenario, plus the
    binary/JSON container-identity check — the per-commit gate."""
    report = check_engines(GOLDEN_DIR, fast=True)
    assert report.cells, "empty differential matrix"
    failed = [c.describe() for c in report.cells if not c.passed]
    assert report.passed, "\n".join(failed + report.format_failures)


def _chain_trace(n=40, nodes=4) -> Trace:
    """A contended request chain bouncing across all node pairs."""
    records = []
    t = 0
    for i in range(n):
        src, dst = i % nodes, (i + 1) % nodes
        records.append(TraceRecord(
            msg_id=i, key=(src, dst, "data", i, 0), src=src, dst=dst,
            size_bytes=64 if i % 3 else 512, kind="data",
            t_inject=t, t_deliver=t + 30,
            cause_id=i - 1 if i else -1, gap=5 if i else t))
        t += 35
    return Trace(records=records,
                 end_markers=[EndMarker(0, t + 10, n - 1, 10)],
                 exec_time=t + 10)


@pytest.mark.parametrize("topology", sorted(ONOC_TOPOLOGIES))
@pytest.mark.parametrize("mode", [TRACE_NAIVE, TRACE_SELF_CORRECTING])
def test_engines_agree_per_message_on_chain(topology, mode):
    """On a pure dependency chain there is no FIFO-tie freedom (and no
    circuit contention, covering circuit_mesh's contention-free closed
    form), so the two engines must agree *per message*, not just at the
    envelope."""
    trace = _chain_trace()
    onoc = OnocConfig(num_nodes=4, topology=topology)
    cfg = TraceConfig(mode=mode)
    ev = replay_trace(trace, optical_factory(onoc, 3), cfg)
    gen = replay_trace(trace, optical_factory(onoc, 3),
                       dataclasses.replace(cfg, engine=ENGINE_GENERATIONAL))
    assert gen.extra["engine"] == "generational"
    assert gen.injections == ev.injections
    assert gen.deliveries == ev.deliveries
    assert gen.exec_time_estimate == ev.exec_time_estimate


def test_generational_requires_optical_factory():
    from repro.config import default_16core_config

    trace = _chain_trace()
    exp = default_16core_config()
    with pytest.raises(ValueError, match="optical target"):
        replay_trace(trace, electrical_factory(exp.noc, 1),
                     TraceConfig(mode=TRACE_NAIVE,
                                 engine=ENGINE_GENERATIONAL))


def test_generational_binary_and_json_identical_on_golden():
    scenario = GOLDEN_SCENARIOS[0]
    trace = Trace.from_json(_trace_path(GOLDEN_DIR, scenario).read_text())
    rt = Trace.from_binary(trace.to_binary())
    onoc = OnocConfig(num_nodes=scenario.cores,
                      num_wavelengths=scenario.wavelengths,
                      topology=scenario.target)
    cfg = TraceConfig(mode=TRACE_SELF_CORRECTING,
                      engine=ENGINE_GENERATIONAL)
    a = replay_trace(trace, optical_factory(onoc, scenario.seed), cfg)
    b = replay_trace(rt, optical_factory(onoc, scenario.seed), cfg)
    assert a.exec_time_estimate == b.exec_time_estimate
    assert a.injections == b.injections
    assert a.deliveries == b.deliveries
