"""Property-based invariant tests (hypothesis; skipped if not installed).

Strategy: generate random *valid* dependency DAG traces, then assert the
whole validation stack holds on them — check_trace finds nothing, replaying
self-correctingly conserves messages, gap scaling composes, and the JSON
round-trip is the identity.  The generator builds records in causal order so
every sample satisfies the Trace contract by construction.
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.core.trace import EndMarker, Trace, TraceRecord  # noqa: E402
from repro.validate import invariants as inv  # noqa: E402


@st.composite
def traces(draw):
    n = draw(st.integers(min_value=0, max_value=25))
    records: list[TraceRecord] = []
    deliver: dict[int, int] = {}
    for i in range(n):
        cause_id = -1
        if records and draw(st.booleans()):
            cause_id = draw(st.sampled_from(sorted(deliver)))
        gap = draw(st.integers(min_value=0, max_value=50))
        t_inject = gap if cause_id == -1 else deliver[cause_id] + gap
        latency = draw(st.integers(min_value=1, max_value=30))
        bound_id, bound_gap = -1, 0
        if cause_id != -1 and len(deliver) > 1 and draw(st.booleans()):
            candidates = [m for m in sorted(deliver)
                          if m != cause_id and deliver[m] <= t_inject]
            if candidates:
                bound_id = draw(st.sampled_from(candidates))
                bound_gap = t_inject - deliver[bound_id]
        src = draw(st.integers(min_value=0, max_value=3))
        dst = draw(st.integers(min_value=0, max_value=3).filter(
            lambda d, s=src: d != s))
        records.append(TraceRecord(
            msg_id=i, key=(src, dst, "req_read", 0, i), src=src, dst=dst,
            size_bytes=draw(st.integers(min_value=1, max_value=256)),
            kind="req_read", t_inject=t_inject,
            t_deliver=t_inject + latency, cause_id=cause_id, gap=gap,
            bound_id=bound_id, bound_gap=bound_gap))
        deliver[i] = t_inject + latency
    markers = []
    if records:
        last = max(records, key=lambda r: r.t_deliver)
        m_gap = draw(st.integers(min_value=0, max_value=20))
        markers.append(EndMarker(0, last.t_deliver + m_gap, last.msg_id,
                                 m_gap))
    trace = Trace(records=records, end_markers=markers,
                  exec_time=markers[0].t_finish if markers else 0)
    trace.validate()
    return trace


@settings(max_examples=60, deadline=None)
@given(traces())
def test_generated_traces_satisfy_every_trace_invariant(trace):
    assert inv.check_trace(trace) == []


@settings(max_examples=60, deadline=None)
@given(traces())
def test_json_round_trip_is_identity(trace):
    back = Trace.from_json(trace.to_json())
    assert back.records == trace.records
    assert back.end_markers == trace.end_markers
    assert back.to_json() == trace.to_json()


@settings(max_examples=40, deadline=None)
@given(traces(), st.integers(min_value=1, max_value=5))
def test_gap_scaling_preserves_validity_and_latencies(trace, k):
    scaled = inv.scale_trace_gaps(trace, k)
    assert inv.check_trace(scaled) == []
    assert {r.msg_id: r.latency for r in scaled.records} \
        == {r.msg_id: r.latency for r in trace.records}
    # k=1 is the identity on timing.
    if k == 1:
        assert {r.msg_id: r.t_inject for r in scaled.records} \
            == {r.msg_id: r.t_inject for r in trace.records}


@settings(max_examples=40, deadline=None)
@given(traces(), st.integers(min_value=1, max_value=4))
def test_gap_scaling_never_shrinks_exec_time(trace, k):
    scaled = inv.scale_trace_gaps(trace, k)
    assert scaled.exec_time >= trace.exec_time


@settings(max_examples=30, deadline=None)
@given(traces())
def test_self_correcting_replay_conserves_on_generated_traces(trace):
    from repro.config import NocConfig
    from repro.core.replay import SelfCorrectingReplayer
    from repro.harness.builders import make_electrical

    sim, net = make_electrical(NocConfig(width=2, height=2), seed=1)
    result = SelfCorrectingReplayer(trace, sim, net).run()
    assert result.messages_unreplayed == 0
    assert inv.check_replay(trace, result) == []
