"""Trace-compaction tests (extension)."""

from __future__ import annotations

import pytest

from repro.config import (
    CacheConfig,
    ExperimentConfig,
    NocConfig,
    OnocConfig,
    SystemConfig,
)
from repro.core import (
    coalesce_leaves,
    compare_to_reference,
    filter_leaf_control,
    leaf_records,
    replay_trace,
)
from repro.harness import optical_factory, run_execution_driven
from repro.system.protocol import CTRL_KINDS


def small_exp(seed=5):
    return ExperimentConfig(
        system=SystemConfig(
            num_cores=4,
            l1=CacheConfig(size_bytes=1024, assoc=2, line_bytes=64, hit_latency=1),
            l2_slice=CacheConfig(size_bytes=4096, assoc=4, line_bytes=64, hit_latency=4),
            mem_latency=30, num_mem_ctrls=2,
        ),
        noc=NocConfig(width=2, height=2),
        onoc=OnocConfig(num_nodes=4, num_wavelengths=16),
        seed=seed,
    )


@pytest.fixture(scope="module")
def setting():
    exp = small_exp()
    _, trace, _ = run_execution_driven(exp, "randshare", "electrical")
    _, ref_trace, _ = run_execution_driven(exp, "randshare", "optical")
    return exp, trace, ref_trace


def test_leaf_records_have_no_dependents(setting):
    _, trace, _ = setting
    leaves = leaf_records(trace)
    assert leaves
    leaf_ids = {r.msg_id for r in leaves}
    for r in trace.records:
        assert r.cause_id not in leaf_ids
    for m in trace.end_markers:
        assert m.cause_id not in leaf_ids


def test_filter_leaf_control_is_valid_and_smaller(setting):
    _, trace, _ = setting
    compacted, stats = filter_leaf_control(trace)
    compacted.validate()
    assert stats.records_after < stats.records_before
    assert stats.record_ratio < 1.0
    assert compacted.exec_time == trace.exec_time


def test_filter_keeps_data_leaves(setting):
    _, trace, _ = setting
    compacted, _ = filter_leaf_control(trace)
    kept_ids = {r.msg_id for r in compacted.records}
    for r in leaf_records(trace):
        if r.kind not in CTRL_KINDS:
            assert r.msg_id in kept_ids


def test_coalesce_leaves_valid_and_byte_preserving(setting):
    _, trace, _ = setting
    compacted, stats = coalesce_leaves(trace, window=64)
    compacted.validate()
    assert stats.records_after <= stats.records_before
    # Coalescing merges sizes, never drops bytes.
    assert stats.bytes_after == stats.bytes_before


def test_coalesce_window_zero_merges_only_simultaneous(setting):
    _, trace, _ = setting
    z, stats_z = coalesce_leaves(trace, window=0)
    w, stats_w = coalesce_leaves(trace, window=256)
    assert stats_w.records_after <= stats_z.records_after
    with pytest.raises(ValueError):
        coalesce_leaves(trace, window=-1)


def test_compacted_trace_replays_accurately(setting):
    exp, trace, ref_trace = setting
    factory = optical_factory(exp.onoc, exp.seed)
    base = compare_to_reference(replay_trace(trace, factory), ref_trace)
    filt, fstats = filter_leaf_control(trace)
    filt_rep = compare_to_reference(replay_trace(filt, factory), ref_trace)
    # compaction costs little accuracy (few % absolute)
    assert filt_rep.exec_time_error_pct < base.exec_time_error_pct + 5.0
    # Coherence traffic is dependency-dense, so the leaf-safe compactions
    # only shave a few percent — an honest property of the trace format.
    assert fstats.record_ratio < 1.0


def test_compaction_meta_tagged(setting):
    _, trace, _ = setting
    filt, _ = filter_leaf_control(trace)
    assert filt.meta["compaction"] == "filter_leaf_control"
    coal, _ = coalesce_leaves(trace, window=16)
    assert "coalesce_leaves" in coal.meta["compaction"]


def test_compaction_deterministic(setting):
    _, trace, _ = setting
    a, _ = coalesce_leaves(trace, window=32)
    b, _ = coalesce_leaves(trace, window=32)
    assert a.records == b.records


# ---------------------------------------------------- hand-built coalescing
def _leaf_burst_trace():
    """Root request + three leaf writebacks on one flow: two within a
    16-cycle window, one far away."""
    from repro.core import EndMarker, Trace, TraceRecord

    root = TraceRecord(
        msg_id=0, key=(0, 1, "req_read", 5, 0), src=0, dst=1, size_bytes=8,
        kind="req_read", t_inject=0, t_deliver=10, cause_id=-1, gap=0)
    leaves = [
        TraceRecord(
            msg_id=i, key=(1, 2, "writeback", 5 + i, 0), src=1, dst=2,
            size_bytes=72, kind="writeback", t_inject=t, t_deliver=t + 12,
            cause_id=0, gap=t - 10)
        for i, t in ((1, 20), (2, 25), (3, 300))
    ]
    marker = EndMarker(node=0, t_finish=400, cause_id=0, gap=390)
    t = Trace(records=[root, *leaves], end_markers=[marker], exec_time=400)
    t.validate()
    return t


def test_coalesce_merges_burst():
    trace = _leaf_burst_trace()
    compacted, stats = coalesce_leaves(trace, window=16)
    compacted.validate()
    assert stats.records_before == 4
    assert stats.records_after == 3          # two leaves merged into one
    assert stats.bytes_after == stats.bytes_before
    merged = next(r for r in compacted.records if r.msg_id == 1)
    assert merged.size_bytes == 144          # 72 + 72
    assert merged.t_inject == 20             # first member's identity
    assert merged.t_deliver == 37            # latest member's delivery
    # the distant leaf survives untouched
    assert any(r.msg_id == 3 and r.size_bytes == 72 for r in compacted.records)


def test_coalesce_respects_window_boundary():
    trace = _leaf_burst_trace()
    wide, stats = coalesce_leaves(trace, window=500)
    assert stats.records_after == 2          # all three leaves merged
    narrow, stats = coalesce_leaves(trace, window=1)
    assert stats.records_after == 4          # nothing merged


def test_filter_drops_ctrl_leaf_only():
    from repro.core import EndMarker, Trace, TraceRecord

    root = TraceRecord(
        msg_id=0, key=(0, 1, "req_read", 5, 0), src=0, dst=1, size_bytes=8,
        kind="req_read", t_inject=0, t_deliver=10, cause_id=-1, gap=0)
    ctrl_leaf = TraceRecord(
        msg_id=1, key=(1, 0, "inv_ack", 5, 0), src=1, dst=0, size_bytes=8,
        kind="inv_ack", t_inject=12, t_deliver=20, cause_id=0, gap=2)
    data_leaf = TraceRecord(
        msg_id=2, key=(1, 2, "writeback", 6, 0), src=1, dst=2, size_bytes=72,
        kind="writeback", t_inject=14, t_deliver=25, cause_id=0, gap=4)
    marker = EndMarker(node=0, t_finish=30, cause_id=0, gap=20)
    trace = Trace(records=[root, ctrl_leaf, data_leaf],
                  end_markers=[marker], exec_time=30)
    trace.validate()
    compacted, stats = filter_leaf_control(trace)
    ids = {r.msg_id for r in compacted.records}
    assert ids == {0, 2}                     # ctrl leaf dropped, data kept
    assert stats.records_after == 2
