"""Config validation tests."""

from __future__ import annotations

import pytest

from repro.config import (
    CacheConfig,
    ConfigError,
    ExperimentConfig,
    NocConfig,
    OnocConfig,
    PhotonicDeviceConfig,
    SystemConfig,
    TraceConfig,
    default_16core_config,
)


# ------------------------------------------------------------------- NoC
def test_noc_defaults_valid():
    cfg = NocConfig()
    assert cfg.num_nodes == 16


def test_noc_bad_topology():
    with pytest.raises(ConfigError, match="unknown topology"):
        NocConfig(topology="hypercube")


def test_noc_ring_requires_height_one():
    with pytest.raises(ConfigError, match="height == 1"):
        NocConfig(topology="ring", width=8, height=2)


def test_noc_ring_valid():
    cfg = NocConfig(topology="ring", width=8, height=1, num_vcs=2)
    assert cfg.num_nodes == 8


def test_noc_torus_needs_two_vcs():
    with pytest.raises(ConfigError, match="dateline"):
        NocConfig(topology="torus", num_vcs=1)


def test_noc_adaptive_needs_two_vcs():
    with pytest.raises(ConfigError, match="escape"):
        NocConfig(routing="adaptive", num_vcs=1)


def test_noc_bad_routing():
    with pytest.raises(ConfigError, match="unknown routing"):
        NocConfig(routing="random_walk")


@pytest.mark.parametrize("field,value", [
    ("width", 0), ("num_vcs", 0), ("vc_depth", 0), ("flit_bytes", 0),
    ("router_latency", 0), ("link_latency", 0), ("clock_ghz", 0.0),
    ("max_packet_flits", 0),
])
def test_noc_nonpositive_fields_rejected(field, value):
    with pytest.raises(ConfigError):
        NocConfig(**{field: value})


def test_flits_for_bytes():
    cfg = NocConfig(flit_bytes=16)
    assert cfg.flits_for_bytes(1) == 1
    assert cfg.flits_for_bytes(16) == 1
    assert cfg.flits_for_bytes(17) == 2
    assert cfg.flits_for_bytes(72) == 5


# ------------------------------------------------------------------ ONoC
def test_onoc_defaults_valid():
    cfg = OnocConfig()
    assert cfg.channel_gbps == 640.0


def test_onoc_bad_topology():
    with pytest.raises(ConfigError, match="unknown optical topology"):
        OnocConfig(topology="butterfly")


def test_onoc_circuit_mesh_requires_square():
    with pytest.raises(ConfigError, match="square"):
        OnocConfig(topology="circuit_mesh", num_nodes=12)


def test_onoc_serialization_cycles_monotone():
    cfg = OnocConfig()
    sizes = [8, 72, 256, 1024]
    cycles = [cfg.serialization_cycles(s) for s in sizes]
    assert cycles == sorted(cycles)
    assert cycles[0] >= 1


def test_onoc_propagation_positive():
    cfg = OnocConfig()
    assert cfg.propagation_cycles(0.001) >= 1
    assert cfg.propagation_cycles(10.0) > cfg.propagation_cycles(1.0)


def test_photonic_device_validation():
    with pytest.raises(ConfigError, match="laser_efficiency"):
        PhotonicDeviceConfig(laser_efficiency=0.0)
    with pytest.raises(ConfigError):
        PhotonicDeviceConfig(waveguide_loss_db_cm=-1.0)


# ----------------------------------------------------------------- Cache
def test_cache_line_must_be_power_of_two():
    with pytest.raises(ConfigError, match="power of two"):
        CacheConfig(line_bytes=48)


def test_cache_size_divisibility():
    with pytest.raises(ConfigError, match="divisible"):
        CacheConfig(size_bytes=1000, assoc=3, line_bytes=64)


def test_cache_num_sets():
    cfg = CacheConfig(size_bytes=32 * 1024, assoc=4, line_bytes=64)
    assert cfg.num_sets == 128


# ---------------------------------------------------------------- System
def test_system_defaults_valid():
    cfg = SystemConfig()
    assert cfg.num_cores == 16


def test_system_line_sizes_must_match():
    with pytest.raises(ConfigError, match="line sizes"):
        SystemConfig(l1=CacheConfig(line_bytes=32))


def test_system_memctrls_bounded_by_cores():
    with pytest.raises(ConfigError, match="cannot exceed"):
        SystemConfig(num_cores=2, num_mem_ctrls=4)


def test_system_data_bigger_than_ctrl():
    with pytest.raises(ConfigError, match="larger than control"):
        SystemConfig(ctrl_msg_bytes=72, data_msg_bytes=72)


# ----------------------------------------------------------------- Trace
def test_trace_mode_validation():
    with pytest.raises(ConfigError, match="unknown trace mode"):
        TraceConfig(mode="hybrid")


def test_trace_dep_fraction_range():
    with pytest.raises(ConfigError, match="keep_dep_fraction"):
        TraceConfig(keep_dep_fraction=1.5)
    TraceConfig(keep_dep_fraction=0.0)
    TraceConfig(keep_dep_fraction=1.0)


# ------------------------------------------------------------ Experiment
def test_experiment_node_count_consistency():
    with pytest.raises(ConfigError, match="electrical NoC"):
        ExperimentConfig(system=SystemConfig(num_cores=4))


def test_default_config_consistent():
    exp = default_16core_config()
    assert exp.system.num_cores == exp.noc.num_nodes == exp.onoc.num_nodes


def test_with_seed():
    exp = default_16core_config().with_seed(123)
    assert exp.seed == 123


def test_configs_frozen():
    cfg = NocConfig()
    with pytest.raises(AttributeError):
        cfg.width = 8  # type: ignore[misc]
