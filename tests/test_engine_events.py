"""Unit tests for the event queue: ordering, cancellation, tie-breaking.

The queue's fast path stores plain ``(time, priority, seq, fn, args)``
tuples; cancellable events append their :class:`Event` handle as a sixth
element.  These tests cover both entry shapes and the interactions between
them (cancel-then-peek, ``_live`` accounting, bulk loading).
"""

from __future__ import annotations


from repro.engine import EventQueue


def drain(q: EventQueue) -> list:
    """Pop everything, invoking each callback; return the popped entries."""
    out = []
    while (entry := q.pop()) is not None:
        entry[3](*entry[4])
        out.append(entry)
    return out


def test_empty_queue():
    q = EventQueue()
    assert len(q) == 0
    assert not q
    assert q.pop() is None
    assert q.peek_time() is None


def test_pop_in_time_order():
    q = EventQueue()
    fired = []
    for t in (30, 10, 20):
        q.push(t, fired.append, (t,))
    drain(q)
    assert fired == [10, 20, 30]


def test_fifo_among_equal_timestamps():
    q = EventQueue()
    order = []
    for tag in range(20):
        q.push(5, order.append, (tag,))
    drain(q)
    assert order == list(range(20))


def test_priority_orders_within_same_time():
    q = EventQueue()
    order = []
    q.push(5, order.append, ("low",), priority=10)
    q.push(5, order.append, ("high",), priority=0)
    q.push(5, order.append, ("mid",), priority=5)
    drain(q)
    assert order == ["high", "mid", "low"]


def test_fast_and_cancellable_share_one_order():
    """Mixed entry shapes obey the same (time, priority, seq) rule."""
    q = EventQueue()
    order = []
    q.push(5, order.append, ("fast0",))
    q.push_cancellable(5, order.append, ("canc0",))
    q.push(5, order.append, ("fast1",))
    q.push_cancellable(3, order.append, ("canc1",))
    drain(q)
    assert order == ["canc1", "fast0", "canc0", "fast1"]


def test_cancel_skips_event():
    q = EventQueue()
    q.push(1, lambda: None)
    drop = q.push_cancellable(0, lambda: None)
    q.cancel(drop)
    assert len(q) == 1
    entry = q.pop()
    assert entry is not None and entry[0] == 1
    assert q.pop() is None


def test_cancel_is_idempotent():
    q = EventQueue()
    ev = q.push_cancellable(1, lambda: None)
    q.cancel(ev)
    q.cancel(ev)
    assert len(q) == 0


def test_cancel_after_pop_does_not_corrupt_live_count():
    """Cancelling an already-consumed handle must not touch ``_live``."""
    q = EventQueue()
    ev = q.push_cancellable(1, lambda: None)
    q.push(2, lambda: None)
    assert q.pop() is not None       # consumes ev
    q.cancel(ev)                     # stale cancel: no-op
    assert len(q) == 1
    assert q.pop() is not None
    assert len(q) == 0


def test_peek_time_skips_cancelled_head():
    q = EventQueue()
    first = q.push_cancellable(1, lambda: None)
    q.push(2, lambda: None)
    q.cancel(first)
    assert q.peek_time() == 2


def test_cancel_then_peek_then_pop_consistent():
    """Peek after cancel discards the dead head exactly once; the
    subsequent pop sees the live ordering and ``_live`` stays exact."""
    q = EventQueue()
    a = q.push_cancellable(1, lambda: None)
    b = q.push_cancellable(2, lambda: None)
    q.push(3, lambda: None)
    q.cancel(a)
    assert q.peek_time() == 2
    assert len(q) == 2
    q.cancel(b)
    assert q.peek_time() == 3
    assert len(q) == 1
    entry = q.pop()
    assert entry[0] == 3
    assert q.pop() is None
    assert len(q) == 0


def test_len_counts_only_live_events():
    q = EventQueue()
    evs = [q.push_cancellable(i, lambda: None) for i in range(5)]
    q.cancel(evs[0])
    q.cancel(evs[3])
    assert len(q) == 3


def test_live_accounting_through_mixed_operations():
    q = EventQueue()
    q.push(1, lambda: None)
    ev = q.push_cancellable(2, lambda: None)
    q.push_many([(3, (lambda: None), ()), (4, (lambda: None), ())])
    assert len(q) == 4
    q.cancel(ev)
    assert len(q) == 3
    q.pop()
    assert len(q) == 2
    q.clear()
    assert len(q) == 0
    assert not q


def test_clear():
    q = EventQueue()
    for i in range(4):
        q.push(i, lambda: None)
    ev = q.push_cancellable(9, lambda: None)
    q.clear()
    assert len(q) == 0
    assert q.pop() is None
    assert not ev.alive              # cleared handles are dead
    q.cancel(ev)                     # and stale cancels stay harmless
    assert len(q) == 0


def test_iter_pending_only_live():
    q = EventQueue()
    a = q.push_cancellable(1, lambda: None)
    q.push_cancellable(2, lambda: None)
    q.push(3, lambda: None)
    q.cancel(a)
    pending = sorted(entry[0] for entry in q.iter_pending())
    assert pending == [2, 3]


def test_event_alive_transitions():
    q = EventQueue()
    ev = q.push_cancellable(1, lambda: None)
    assert ev.alive
    entry = q.pop()
    assert entry is not None and entry[5] is ev
    assert not ev.alive  # consumed


def test_interleaved_push_pop():
    q = EventQueue()
    out = []
    q.push(10, out.append, (10,))
    entry = q.pop()
    entry[3](*entry[4])
    q.push(5, out.append, (5,))   # earlier time pushed after a pop is fine
    entry = q.pop()
    entry[3](*entry[4])
    assert out == [10, 5]


# ----------------------------------------------------------- bulk loading
def test_push_many_orders_like_individual_pushes():
    a, b = EventQueue(), EventQueue()
    items = [(30, 0), (10, 1), (10, 0), (20, 2), (10, 1)]
    outa, outb = [], []
    for i, (t, _tag) in enumerate(items):
        a.push(t, outa.append, (i,))
    b.push_many((t, outb.append, (i,)) for i, (t, _tag) in enumerate(items))
    drain(a)
    drain(b)
    assert outa == outb


def test_push_many_into_nonempty_queue():
    q = EventQueue()
    out = []
    q.push(15, out.append, ("old",))
    n = q.push_many([(10, out.append, ("b0",)), (20, out.append, ("b1",))])
    assert n == 2
    assert len(q) == 3
    drain(q)
    assert out == ["b0", "old", "b1"]


def test_push_many_same_timestamp_stable():
    """Bulk-loaded records at one timestamp fire in submission order."""
    q = EventQueue()
    out = []
    q.push_many((7, out.append, (i,)) for i in range(50))
    drain(q)
    assert out == list(range(50))


def test_push_many_empty_iterable():
    q = EventQueue()
    assert q.push_many([]) == 0
    assert len(q) == 0
    assert q.pop() is None


def test_push_many_applies_priority():
    q = EventQueue()
    out = []
    q.push_many([(5, out.append, ("bulk",))], priority=5)
    q.push(5, out.append, ("urgent",), priority=0)
    drain(q)
    assert out == ["urgent", "bulk"]
