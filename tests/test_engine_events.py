"""Unit tests for the event queue: ordering, cancellation, tie-breaking."""

from __future__ import annotations

import pytest

from repro.engine import EventQueue


def test_empty_queue():
    q = EventQueue()
    assert len(q) == 0
    assert not q
    assert q.pop() is None
    assert q.peek_time() is None


def test_pop_in_time_order():
    q = EventQueue()
    fired = []
    for t in (30, 10, 20):
        q.push(t, fired.append, (t,))
    while (ev := q.pop()) is not None:
        ev.fn(*ev.args)
    assert fired == [10, 20, 30]


def test_fifo_among_equal_timestamps():
    q = EventQueue()
    order = []
    for tag in range(20):
        q.push(5, order.append, (tag,))
    while (ev := q.pop()) is not None:
        ev.fn(*ev.args)
    assert order == list(range(20))


def test_priority_orders_within_same_time():
    q = EventQueue()
    order = []
    q.push(5, order.append, ("low",), priority=10)
    q.push(5, order.append, ("high",), priority=0)
    q.push(5, order.append, ("mid",), priority=5)
    while (ev := q.pop()) is not None:
        ev.fn(*ev.args)
    assert order == ["high", "mid", "low"]


def test_cancel_skips_event():
    q = EventQueue()
    keep = q.push(1, lambda: None)
    drop = q.push(0, lambda: None)
    q.cancel(drop)
    assert len(q) == 1
    assert q.pop() is keep
    assert q.pop() is None


def test_cancel_is_idempotent():
    q = EventQueue()
    ev = q.push(1, lambda: None)
    q.cancel(ev)
    q.cancel(ev)
    assert len(q) == 0


def test_peek_time_skips_cancelled_head():
    q = EventQueue()
    first = q.push(1, lambda: None)
    q.push(2, lambda: None)
    q.cancel(first)
    assert q.peek_time() == 2


def test_len_counts_only_live_events():
    q = EventQueue()
    evs = [q.push(i, lambda: None) for i in range(5)]
    q.cancel(evs[0])
    q.cancel(evs[3])
    assert len(q) == 3


def test_clear():
    q = EventQueue()
    for i in range(4):
        q.push(i, lambda: None)
    q.clear()
    assert len(q) == 0
    assert q.pop() is None


def test_iter_pending_only_live():
    q = EventQueue()
    a = q.push(1, lambda: None)
    b = q.push(2, lambda: None)
    q.cancel(a)
    pending = list(q.iter_pending())
    assert pending == [b]


def test_event_alive_transitions():
    q = EventQueue()
    ev = q.push(1, lambda: None)
    assert ev.alive
    popped = q.pop()
    assert popped is ev
    assert not ev.alive  # consumed


def test_interleaved_push_pop():
    q = EventQueue()
    out = []
    q.push(10, out.append, (10,))
    ev = q.pop()
    ev.fn(*ev.args)
    q.push(5, out.append, (5,))   # earlier time pushed after a pop is fine
    ev = q.pop()
    ev.fn(*ev.args)
    assert out == [10, 5]
