"""Unit tests for the Simulator: clock semantics, scheduling rules, hooks."""

from __future__ import annotations

import pytest

from repro.engine import SimulationError, Simulator


def test_run_executes_in_time_order():
    sim = Simulator()
    out = []
    sim.schedule(10, out.append, (10,))
    sim.schedule(5, out.append, (5,))
    sim.schedule(7, out.append, (7,))
    sim.run()
    assert out == [5, 7, 10]
    assert sim.now == 10


def test_schedule_after_is_relative():
    sim = Simulator()
    out = []

    def later():
        sim.schedule_after(5, out.append, (sim.now + 5,))

    sim.schedule(3, later)
    sim.run()
    assert out == [8]


def test_schedule_in_past_raises():
    sim = Simulator()
    sim.schedule(10, lambda: sim.schedule(5, lambda: None))
    with pytest.raises(SimulationError, match="cannot schedule"):
        sim.run()


def test_negative_delay_raises():
    sim = Simulator()
    with pytest.raises(SimulationError, match="negative delay"):
        sim.schedule_after(-1, lambda: None)


def test_run_until_is_inclusive():
    sim = Simulator()
    out = []
    sim.schedule(5, out.append, (5,))
    sim.schedule(6, out.append, (6,))
    sim.run(until=5)
    assert out == [5]
    assert sim.now == 5
    sim.run()
    assert out == [5, 6]


def test_run_until_leaves_clock_at_until_when_idle():
    sim = Simulator()
    sim.schedule(100, lambda: None)
    sim.run(until=50)
    assert sim.now == 50
    assert sim.pending_events == 1


def test_cancel_prevents_execution():
    sim = Simulator()
    out = []
    ev = sim.schedule_cancellable(5, out.append, (5,))
    sim.cancel(ev)
    sim.run()
    assert out == []


def test_schedule_cancellable_fires_when_not_cancelled():
    sim = Simulator()
    out = []
    ev = sim.schedule_cancellable(5, out.append, (5,))
    assert ev.alive
    sim.run()
    assert out == [5]
    assert not ev.alive


def test_schedule_after_cancellable():
    sim = Simulator()
    out = []

    def arm():
        ev = sim.schedule_after_cancellable(10, out.append, ("timeout",))
        sim.schedule_after(5, sim.cancel, (ev,))

    sim.schedule(3, arm)
    sim.run()
    assert out == []
    assert sim.now == 8     # the cancel itself was the last event


def test_schedule_cancellable_in_past_raises():
    sim = Simulator()
    sim.schedule(10, lambda: sim.schedule_cancellable(5, lambda: None))
    with pytest.raises(SimulationError, match="cannot schedule"):
        sim.run()


def test_schedule_many_matches_individual_schedules():
    a, b = Simulator(), Simulator()
    outa, outb = [], []
    times = [9, 3, 3, 7, 3]
    for i, t in enumerate(times):
        a.schedule(t, outa.append, (i,))
    b.schedule_many((t, outb.append, (i,)) for i, t in enumerate(times))
    a.run()
    b.run()
    assert outa == outb
    assert a.event_count == b.event_count == len(times)


def test_schedule_many_in_past_raises():
    sim = Simulator()
    sim.schedule(10, lambda: None)
    sim.run()
    with pytest.raises(SimulationError, match="cannot schedule"):
        sim.schedule_many([(20, lambda: None, ()), (5, lambda: None, ())])


def test_event_count_increments():
    sim = Simulator()
    for i in range(7):
        sim.schedule(i, lambda: None)
    sim.run()
    assert sim.event_count == 7


def test_max_events_guard():
    sim = Simulator(max_events=10)

    def loop():
        sim.schedule_after(1, loop)

    sim.schedule(0, loop)
    with pytest.raises(SimulationError, match="max_events"):
        sim.run()


def test_end_hooks_fire_on_drain():
    sim = Simulator()
    out = []
    sim.add_end_hook(lambda: out.append("end"))
    sim.schedule(1, lambda: None)
    sim.run()
    assert out == ["end"]


def test_end_hooks_not_fired_on_until_stop():
    sim = Simulator()
    out = []
    sim.add_end_hook(lambda: out.append("end"))
    sim.schedule(10, lambda: None)
    sim.run(until=5)
    assert out == []


def test_step_single_event():
    sim = Simulator()
    out = []
    sim.schedule(3, out.append, (3,))
    sim.schedule(4, out.append, (4,))
    assert sim.step()
    assert out == [3]
    assert sim.step()
    assert not sim.step()


def test_step_enforces_max_events():
    sim = Simulator(max_events=2)
    for i in range(3):
        sim.schedule(i, lambda: None)
    assert sim.step()
    assert sim.step()
    with pytest.raises(SimulationError, match="max_events"):
        sim.step()


def test_step_fires_end_hooks_on_drain():
    sim = Simulator()
    out = []
    sim.add_end_hook(lambda: out.append("end"))
    sim.schedule(1, out.append, ("a",))
    sim.schedule(2, out.append, ("b",))
    sim.step()
    assert out == ["a"]          # queue not drained yet: no hook
    sim.step()
    assert out == ["a", "b", "end"]
    assert not sim.step()
    assert out == ["a", "b", "end"]   # empty-queue step does not re-fire


def test_step_no_hooks_when_callback_reschedules():
    sim = Simulator()
    out = []
    sim.add_end_hook(lambda: out.append("end"))
    sim.schedule(1, lambda: sim.schedule(2, out.append, ("later",)))
    sim.step()
    assert out == []             # refilled by the callback: not drained
    sim.step()
    assert out == ["later", "end"]


def test_reset_clears_state():
    sim = Simulator()
    sim.schedule(5, lambda: None)
    sim.run()
    sim.reset()
    assert sim.now == 0
    assert sim.pending_events == 0


def test_reentrant_run_rejected():
    sim = Simulator()

    def nested():
        sim.run()

    sim.schedule(1, nested)
    with pytest.raises(SimulationError, match="re-entrant"):
        sim.run()


def test_same_time_fifo_among_callbacks():
    sim = Simulator()
    out = []
    for i in range(10):
        sim.schedule(42, out.append, (i,))
    sim.run()
    assert out == list(range(10))


def test_determinism_same_seed_same_rng():
    a = Simulator(seed=5).rng.stream("x").random(4)
    b = Simulator(seed=5).rng.stream("x").random(4)
    assert (a == b).all()
