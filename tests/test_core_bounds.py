"""Secondary-trigger (bound edge) mechanism tests.

The production capture does not emit bound edges (see the note in
repro/system/directory.py and EXPERIMENTS.md), but the trace format and the
replayers implement the general two-edge earliest-start rule; these tests
pin that behaviour down with hand-built traces.
"""

from __future__ import annotations

import pytest

from repro.config import OnocConfig
from repro.core import SelfCorrectingReplayer, Trace, TraceRecord
from repro.core.iterate import IterativeRefiner
from repro.engine import Simulator
from repro.onoc import build_optical_network


def rec(mid, src, dst, t_in, t_del, cause=-1, gap=None, bound=-1,
        bound_gap=0, size=8):
    return TraceRecord(
        msg_id=mid, key=(src, dst, "synthetic", mid, 0), src=src, dst=dst,
        size_bytes=size, kind="synthetic", t_inject=t_in, t_deliver=t_del,
        cause_id=cause, gap=(t_in if cause == -1 else gap),
        bound_id=bound, bound_gap=bound_gap)


def bounded_trace():
    """r2 is released by max(r0 + 5, r1 + 60): consistent at capture where
    r0 delivers at 20 and r1 at 10 -> inject 70 either way... here we make
    both edge sums equal the captured inject (70)."""
    r0 = rec(0, 0, 1, 0, 20)                       # root, delivered t=20
    r1 = rec(1, 2, 3, 0, 10)                       # root, delivered t=10
    r2 = rec(2, 1, 2, 70, 90, cause=0, gap=50, bound=1, bound_gap=60)
    t = Trace(records=[r0, r1, r2], end_markers=[], exec_time=90)
    t.validate()
    return t


# ---------------------------------------------------------------- format
def test_bound_requires_cause():
    with pytest.raises(ValueError, match="bound but no cause"):
        rec(0, 0, 1, 10, 20, bound=5)


def test_bound_gap_consistency_checked():
    r0 = rec(0, 0, 1, 0, 20)
    r1 = rec(1, 2, 3, 0, 10)
    bad = rec(2, 1, 2, 70, 90, cause=0, gap=50, bound=1, bound_gap=7)
    t = Trace(records=[r0, r1, bad], end_markers=[], exec_time=90)
    with pytest.raises(ValueError, match="bound_gap"):
        t.validate()


def test_missing_bound_detected():
    r0 = rec(0, 0, 1, 0, 20)
    bad = rec(2, 1, 2, 70, 90, cause=0, gap=50, bound=99, bound_gap=60)
    t = Trace(records=[r0, bad], end_markers=[], exec_time=90)
    with pytest.raises(ValueError, match="not in trace"):
        t.validate()


def test_json_roundtrip_preserves_bounds():
    t = bounded_trace()
    again = Trace.from_json(t.to_json())
    assert again.records == t.records
    r2 = next(r for r in again.records if r.msg_id == 2)
    assert r2.bound_id == 1 and r2.bound_gap == 60


def test_legacy_json_without_bound_columns_loads():
    t = Trace(records=[rec(0, 0, 1, 0, 20)], end_markers=[], exec_time=20)
    text = t.to_json()
    # Strip the two bound columns to emulate a pre-bound trace file.
    import json

    obj = json.loads(text)
    obj["records"] = [row[:10] for row in obj["records"]]
    again = Trace.from_json(json.dumps(obj))
    assert again.records[0].bound_id == -1


# ----------------------------------------------------------------- replay
def _replay(trace):
    sim = Simulator(seed=1)
    net = build_optical_network(sim, OnocConfig(num_nodes=4,
                                                num_wavelengths=16))
    rep = SelfCorrectingReplayer(trace, sim, net)
    return rep.run()


def test_replay_applies_earliest_start_rule():
    t = bounded_trace()
    result = _replay(t)
    assert result.messages_unreplayed == 0
    expected = max(result.deliveries[0] + 50, result.deliveries[1] + 60)
    assert result.injections[2] == expected


def test_bound_binding_edge_can_win():
    """Give the bound edge a huge delay so it must dominate on any target."""
    r0 = rec(0, 0, 1, 0, 20)
    r1 = rec(1, 2, 3, 0, 10)
    r2 = rec(2, 1, 2, 1010, 1030, cause=0, gap=990, bound=1, bound_gap=1000)
    t = Trace(records=[r0, r1, r2], end_markers=[], exec_time=1030)
    t.validate()
    result = _replay(t)
    assert result.injections[2] == max(result.deliveries[0] + 990,
                                       result.deliveries[1] + 1000)


def test_iterative_refiner_honours_bounds():
    t = bounded_trace()
    def sim_factory():
        s = Simulator(seed=1)
        return s, build_optical_network(
            s, OnocConfig(num_nodes=4, num_wavelengths=16))

    refiner = IterativeRefiner(t, sim_factory, max_iterations=3)
    result = refiner.run()
    assert result.messages_unreplayed == 0


def test_dropping_dep_also_drops_bound():
    t = bounded_trace()
    sim = Simulator(seed=1)
    net = build_optical_network(sim, OnocConfig(num_nodes=4,
                                                num_wavelengths=16))
    rep = SelfCorrectingReplayer(t, sim, net, keep_dep_fraction=0.0)
    result = rep.run()
    # The bounded record fell back to its absolute timestamp.
    assert result.injections[2] == 70
