"""SweepRunner tests: codec round-trips, caching, serial/parallel identity.

The worker task functions live at module level (``tests`` is a package) so
they can be shipped to worker processes by dotted reference and hashed into
cache keys, exactly like the real experiment drivers.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib

import numpy as np
import pytest

from repro.config import (
    ExperimentConfig,
    NocConfig,
    OnocConfig,
    SystemConfig,
    default_16core_config,
)
from repro.harness import (
    SweepRunner,
    cache_clear,
    cache_info,
    decode_value,
    encode_value,
    load_latency_point,
    task,
)
from repro.harness.parallel import CodecError, callable_ref, resolve_callable
from repro.stats import ErrorReport


def tiny_exp(seed: int = 5) -> ExperimentConfig:
    return ExperimentConfig(
        system=SystemConfig(num_cores=4, num_mem_ctrls=2),
        noc=NocConfig(width=2, height=2),
        onoc=OnocConfig(num_nodes=4, num_wavelengths=16),
        seed=seed,
    )


# ------------------------------------------------- module-level task fns
def add(a: int, b: int, scale: int = 1) -> int:
    return (a + b) * scale


def touch_and_square(x: int, marker_dir: str) -> int:
    """Side-effecting task: proves (non-)execution via marker files."""
    d = pathlib.Path(marker_dir)
    d.mkdir(parents=True, exist_ok=True)
    (d / f"ran_{x}").touch()
    return x * x


def traffic_point(exp: ExperimentConfig, rate: float):
    return load_latency_point("crossbar", exp, "uniform", rate,
                              warmup=50, measure=300)


# ----------------------------------------------------------------- codec
def test_codec_round_trips_primitives_and_containers():
    values = [
        None, True, False, 3, -7.25, "x",
        [1, [2, 3], "s"],
        (1, 2, (3, "four")),
        {"a": 1, "b": [2, 3]},
        {(0, 1, "data", 5, 0): 17, (2, 3, "ctrl", 1, 1): 9},
        {"$": "not-a-tag"},
    ]
    for v in values:
        enc = encode_value(v)
        json.dumps(enc)                       # must be pure JSON
        assert decode_value(enc) == v


def test_codec_round_trips_nested_dataclasses():
    exp = default_16core_config().with_seed(9)
    enc = encode_value(exp)
    json.dumps(enc)
    assert decode_value(enc) == exp


def test_codec_round_trips_error_report():
    rep = ErrorReport(exec_time_error_pct=1.5, exec_time_signed_pct=-1.5,
                      mean_latency_error_pct=2.0, latency_mape_pct=8.0,
                      matched_messages=100, unmatched_messages=3)
    assert decode_value(encode_value(rep)) == rep


def test_codec_normalises_numpy_scalars():
    assert encode_value(np.int64(4)) == 4
    assert isinstance(encode_value(np.int64(4)), int)
    assert encode_value(np.float64(0.5)) == 0.5
    assert isinstance(encode_value(np.float64(0.5)), float)


def test_codec_rejects_opaque_objects():
    with pytest.raises(CodecError):
        encode_value(object())


def test_callable_ref_round_trip():
    ref = callable_ref(add)
    assert ref == "tests.test_harness_parallel:add"
    assert resolve_callable(ref) is add


def test_callable_ref_rejects_lambdas():
    with pytest.raises(ValueError, match="module-level"):
        callable_ref(lambda: None)


# ---------------------------------------------------------------- runner
def test_results_in_submission_order():
    runner = SweepRunner(workers=1)
    results = runner.map(add, [(i, 10 * i) for i in range(8)])
    assert results == [11 * i for i in range(8)]
    assert runner.last_stats.executed == 8
    assert runner.last_stats.cached == 0


def test_kwargs_participate_in_task_identity(tmp_path):
    runner = SweepRunner(workers=1, cache_dir=tmp_path)
    a = runner.run([task(add, 1, 2, scale=1)])
    b = runner.run([task(add, 1, 2, scale=10)])
    assert (a, b) == ([3], [30])
    assert runner.last_stats.executed == 1     # different key: not a hit


def test_cache_hit_skips_all_simulations(tmp_path):
    cache = tmp_path / "cache"
    markers = tmp_path / "markers"
    runner = SweepRunner(workers=1, cache_dir=cache)
    tasks = [task(touch_and_square, x, str(markers)) for x in range(5)]

    first = runner.run(tasks)
    assert first == [x * x for x in range(5)]
    assert runner.last_stats.executed == 5
    assert len(list(markers.iterdir())) == 5

    for f in markers.iterdir():
        f.unlink()
    second = runner.run(tasks)
    assert second == first
    assert runner.last_stats.executed == 0
    assert runner.last_stats.cached == 5
    assert list(markers.iterdir()) == []       # zero task executions


def test_cache_salt_invalidates(tmp_path):
    t = [task(add, 2, 3)]
    a = SweepRunner(workers=1, cache_dir=tmp_path, salt="rev1")
    a.run(t)
    b = SweepRunner(workers=1, cache_dir=tmp_path, salt="rev2")
    b.run(t)
    assert b.last_stats.executed == 1          # salt change: miss


def test_corrupt_cache_entry_recomputed(tmp_path):
    runner = SweepRunner(workers=1, cache_dir=tmp_path)
    t = [task(add, 4, 5)]
    runner.run(t)
    entry = next(tmp_path.glob("*.json"))
    entry.write_text("{ not json")
    assert runner.run(t) == [9]
    assert runner.last_stats.executed == 1


def test_cache_info_and_clear(tmp_path):
    runner = SweepRunner(workers=1, cache_dir=tmp_path)
    runner.map(add, [(i, i) for i in range(3)])
    info = cache_info(tmp_path)
    assert info["entries"] == 3 and info["bytes"] > 0
    assert cache_clear(tmp_path) == 3
    assert cache_info(tmp_path)["entries"] == 0


# ------------------------------------------- serial vs parallel identity
@pytest.mark.parametrize("workers", [1, 2])
def test_real_sweep_serial_and_parallel_identical(workers, tmp_path):
    """The ISSUE-1 acceptance criterion: bit-identical results regardless
    of worker count, on real network simulations."""
    exp = tiny_exp()
    runner = SweepRunner(workers=workers, cache_dir=None)
    results = runner.map(traffic_point, [(exp, r) for r in (0.02, 0.05, 0.1)])
    # Golden-free identity check: compare against the direct in-process run.
    # wall_clock_s is host timing, not a simulation output — mask it.
    direct = [traffic_point(exp, r) for r in (0.02, 0.05, 0.1)]
    mask = [dataclasses.replace(r, wall_clock_s=0.0) for r in results]
    assert mask == [dataclasses.replace(r, wall_clock_s=0.0) for r in direct]


def test_parallel_cache_round_trip_preserves_result_types(tmp_path):
    exp = tiny_exp()
    runner = SweepRunner(workers=1, cache_dir=tmp_path)
    first = runner.map(traffic_point, [(exp, 0.05)])
    again = runner.map(traffic_point, [(exp, 0.05)])
    assert runner.last_stats.cached == 1
    assert again == first
    res = again[0]
    assert type(res).__name__ == "TrafficResult"
    assert isinstance(res.avg_latency, float)
    assert isinstance(res.delivered_messages, int)
