"""Unit tests for online stats, histograms and error metrics."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.stats import (
    ErrorReport,
    Histogram,
    LatencyRecorder,
    NetworkStats,
    OnlineStats,
    mean_absolute_percentage_error,
    percent_error,
    signed_percent_error,
)


# ------------------------------------------------------------ OnlineStats
def test_online_stats_empty():
    s = OnlineStats()
    assert s.count == 0
    assert s.mean == 0.0
    assert s.variance == 0.0


def test_online_stats_matches_numpy():
    rng = np.random.default_rng(0)
    xs = rng.normal(10, 3, size=500)
    s = OnlineStats()
    for x in xs:
        s.add(float(x))
    assert s.count == 500
    assert s.mean == pytest.approx(xs.mean(), rel=1e-12)
    assert s.variance == pytest.approx(xs.var(ddof=1), rel=1e-9)
    assert s.min == xs.min()
    assert s.max == xs.max()
    assert s.total == pytest.approx(xs.sum())


def test_online_stats_merge_matches_single_pass():
    rng = np.random.default_rng(1)
    xs = rng.random(300)
    a, b, whole = OnlineStats(), OnlineStats(), OnlineStats()
    for x in xs[:100]:
        a.add(float(x))
    for x in xs[100:]:
        b.add(float(x))
    for x in xs:
        whole.add(float(x))
    a.merge(b)
    assert a.count == whole.count
    assert a.mean == pytest.approx(whole.mean)
    assert a.variance == pytest.approx(whole.variance)
    assert a.min == whole.min and a.max == whole.max


def test_online_stats_merge_empty_cases():
    a, b = OnlineStats(), OnlineStats()
    b.add(5.0)
    a.merge(b)
    assert a.count == 1 and a.mean == 5.0
    a.merge(OnlineStats())            # merging empty is a no-op
    assert a.count == 1


def test_online_stats_as_dict():
    s = OnlineStats()
    s.add(2.0)
    s.add(4.0)
    d = s.as_dict()
    assert d["count"] == 2 and d["mean"] == 3.0 and d["total"] == 6.0


# -------------------------------------------------------------- Histogram
def test_histogram_basic_binning():
    h = Histogram(bin_width=10, num_bins=4)
    for x in (0, 9, 10, 35, 39):
        h.add(x)
    assert list(h.counts) == [2, 1, 0, 2]
    assert h.overflow == 0
    assert h.count == 5


def test_histogram_overflow():
    h = Histogram(bin_width=1, num_bins=4)
    h.add(100)
    assert h.overflow == 1
    assert h.percentile(99) == math.inf


def test_histogram_rejects_negative():
    h = Histogram()
    with pytest.raises(ValueError):
        h.add(-1)


def test_histogram_percentile():
    h = Histogram(bin_width=1, num_bins=100)
    for x in range(100):
        h.add(x)
    assert h.percentile(50) == pytest.approx(50, abs=1)
    assert h.percentile(99) == pytest.approx(99, abs=1)
    assert h.percentile(0) >= 0


def test_histogram_add_many_matches_add():
    xs = list(range(0, 200, 3))
    h1, h2 = Histogram(bin_width=5, num_bins=30), Histogram(bin_width=5, num_bins=30)
    for x in xs:
        h1.add(x)
    h2.add_many(np.array(xs))
    assert (h1.counts == h2.counts).all()
    assert h1.overflow == h2.overflow
    assert h1.count == h2.count


def test_histogram_mean_approximation():
    h = Histogram(bin_width=1, num_bins=1000)
    for x in (10, 20, 30):
        h.add(x)
    assert h.mean == pytest.approx(20.5, abs=1.0)  # midpoints = x + 0.5


def test_histogram_invalid_params():
    with pytest.raises(ValueError):
        Histogram(bin_width=0)
    with pytest.raises(ValueError):
        Histogram(num_bins=0)
    h = Histogram()
    with pytest.raises(ValueError):
        h.percentile(101)


# ----------------------------------------------------------- error metrics
def test_percent_error():
    assert percent_error(110, 100) == pytest.approx(10.0)
    assert percent_error(90, 100) == pytest.approx(10.0)
    with pytest.raises(ValueError):
        percent_error(1, 0)


def test_signed_percent_error():
    assert signed_percent_error(110, 100) == pytest.approx(10.0)
    assert signed_percent_error(90, 100) == pytest.approx(-10.0)


def test_mape():
    assert mean_absolute_percentage_error([110, 90], [100, 100]) == pytest.approx(10.0)
    assert mean_absolute_percentage_error([], []) == 0.0
    # zero-reference entries skipped
    assert mean_absolute_percentage_error([5, 110], [0, 100]) == pytest.approx(10.0)
    with pytest.raises(ValueError, match="shape"):
        mean_absolute_percentage_error([1], [1, 2])


def test_error_report_compare():
    rep = ErrorReport.compare(
        replay_exec_time=105,
        ref_exec_time=100,
        replay_latencies={"a": 10, "b": 20, "c": 5},
        ref_latencies={"a": 10, "b": 25, "d": 7},
    )
    assert rep.exec_time_error_pct == pytest.approx(5.0)
    assert rep.exec_time_signed_pct == pytest.approx(5.0)
    assert rep.matched_messages == 2
    assert rep.unmatched_messages == 2
    assert rep.latency_mape_pct == pytest.approx((0 + 20.0) / 2)
    # mean replay (15) vs mean ref (17.5)
    assert rep.mean_latency_error_pct == pytest.approx(abs(15 - 17.5) / 17.5 * 100)


def test_error_report_no_matches():
    rep = ErrorReport.compare(100, 100, {"x": 1}, {"y": 2})
    assert rep.matched_messages == 0
    assert rep.latency_mape_pct == 0.0


# ---------------------------------------------------------------- summary
def test_latency_recorder():
    r = LatencyRecorder(keep_per_message=True)
    r.record(1, 10)
    r.record(2, 20)
    assert r.mean == 15.0
    assert r.count == 2
    assert r.by_message == {1: 10, 2: 20}
    with pytest.raises(ValueError):
        r.record(3, -1)


def test_latency_recorder_without_per_message():
    r = LatencyRecorder()
    r.record(1, 10)
    assert r.by_message is None


def test_network_stats_throughput_and_inflight():
    st = NetworkStats()
    st.messages_sent = 10
    st.messages_delivered = 7
    st.flits_delivered = 70
    assert st.in_flight() == 3
    assert st.throughput_flits_per_cycle(100) == pytest.approx(0.7)
    assert st.throughput_flits_per_cycle(0) == 0.0
