"""End-to-end tests for the repro.serve service.

Each test starts a real :class:`SimulationServer` on an ephemeral port
inside ``asyncio.run`` and talks to it over real sockets with real worker
processes — the full production path.  Covered here, per the PR acceptance
criteria:

* 50 concurrent requests (with duplicates) through the async client,
  results byte-identical to the equivalent local executions;
* single-flight dedup coalescing identical in-flight requests onto one
  execution;
* shed responses once the admission queue is full;
* SIGTERM draining in-flight jobs (results delivered) before exit;
* worker-side failures surfacing the *original* traceback (the
  deliberately-infeasible-OnocConfig regression), timeouts, and
  worker-death retry exhaustion;
* the shared on-disk cache answering across front ends (SweepRunner
  sweep -> service hit);
* the HTTP shim and the ``repro submit`` CLI.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import threading

import pytest

from repro.cli import main
from repro.harness import SweepRunner, encode_value, task
from repro.harness.parallel import _execute_encoded
from repro.serve import (
    AsyncServeClient,
    JobFailed,
    Shed,
    SimulationServer,
)
from repro.serve import protocol as P
from repro.serve.ops import echo, run_scenario_json


def die_op() -> None:
    """Test operation: kill the worker process outright (breaks the pool)."""
    os._exit(23)


def serve_run(body, **server_kw):
    """Run async ``body(server)`` against a fresh in-process server."""

    async def _main():
        server = SimulationServer(port=0, **server_kw)
        await server.start()
        try:
            return await body(server)
        finally:
            await server.aclose()

    return asyncio.run(_main())


def _canon(value) -> str:
    """Canonical JSON spelling of a decoded result, for byte comparison."""
    return json.dumps(encode_value(value), sort_keys=True)


# ------------------------------------------------- concurrency + identity
def test_fifty_concurrent_submits_dedup_and_byte_identical(tmp_path):
    """The acceptance-criteria test: 50 concurrent submits (10 distinct
    payloads x 5 duplicates) through one async client.  Every duplicate
    coalesces onto the in-flight execution, and every result is
    byte-identical to running the same task locally."""
    payloads = [{"i": i, "blob": [i, [i + 1, "x"]]} for i in range(10)]
    sleep_s = 0.05

    async def body(server):
        async with await AsyncServeClient.connect(port=server.port) as c:
            results = await asyncio.gather(*[
                c.submit("echo", payloads[i % 10], sleep_s=sleep_s)
                for i in range(50)])
            status = await c.status()
        return results, status["stats"]

    results, stats = serve_run(body, workers=2, max_pending=64,
                               cache_dir=str(tmp_path))

    # Byte-identical to the equivalent local executions (same codec path
    # the CLI and SweepRunner use).
    local = {}
    for i, payload in enumerate(payloads):
        t = task(echo, payload, sleep_s=sleep_s)
        local[i] = json.dumps(_execute_encoded(t.fn, t.args, t.kwargs, False),
                              sort_keys=True)
    assert len(results) == 50
    for i, remote in enumerate(results):
        assert _canon(remote) == local[i % 10]

    # Single-flight dedup: 10 executions served all 50 requests.
    assert stats["submitted"] == 10
    assert stats["executed"] == 10
    assert stats["dedup_hits"] == 40
    assert stats["completed"] == 10
    assert stats["shed"] == 0 and stats["failed"] == 0


def test_remote_scenario_matches_local_run():
    """A real simulation op end to end: the service's answer is
    byte-identical to calling the same entry point locally."""
    params = {"workload": "prodcons", "cores": 4, "seed": 1, "scale": 0.1,
              "capture": "electrical", "target": "crossbar"}

    async def body(server):
        async with await AsyncServeClient.connect(port=server.port) as c:
            return await c.submit("scenario_json", params)

    remote = serve_run(body, workers=1)
    assert _canon(remote) == _canon(run_scenario_json(params))
    assert remote.scenario.workload == "prodcons"


def test_cache_shared_with_sweep_runner(tmp_path):
    """A result computed by a batch sweep is a cache hit for the service:
    same content key, same on-disk entry, no worker involved."""
    payload = {"shared": True}
    runner = SweepRunner(workers=1, cache_dir=tmp_path)
    assert runner.run([task(echo, payload)]) == [payload]

    events = []

    async def body(server):
        async with await AsyncServeClient.connect(port=server.port) as c:
            result = await c.submit("echo", payload, quiet=False,
                                    on_event=events.append)
        return result, dict(server.table.stats.as_dict())

    result, stats = serve_run(body, workers=1, cache_dir=str(tmp_path))
    assert result == payload
    assert stats["cache_hits"] == 1
    assert stats["executed"] == 0
    done = [e for e in events if e.get("event") == P.EV_DONE]
    assert done and done[0]["cached"] is True


# ------------------------------------------------------ admission control
def test_shed_when_queue_full_but_dedup_admitted():
    async def body(server):
        async with await AsyncServeClient.connect(port=server.port) as c:
            slow = [asyncio.ensure_future(c.submit("echo", i, sleep_s=0.5))
                    for i in range(2)]
            while server.table.depth < 2:
                await asyncio.sleep(0.005)

            # A third *distinct* job is shed with an explanatory reason...
            with pytest.raises(Shed) as exc:
                await c.submit("echo", 99)
            assert "queue full" in exc.value.reason
            assert exc.value.depth == 2

            # ...but a duplicate of in-flight work piggybacks for free.
            dup = await c.submit("echo", 0, sleep_s=0.5)
            results = await asyncio.gather(*slow)
            status = await c.status()
        return dup, results, status["stats"]

    dup, results, stats = serve_run(body, workers=1, max_pending=2)
    assert dup == 0 and results == [0, 1]
    assert stats["shed"] == 1
    assert stats["dedup_hits"] == 1
    assert stats["executed"] == 2


# ------------------------------------------------------- failure surfacing
def test_worker_failure_surfaces_original_traceback():
    """Satellite regression: an infeasible OnocConfig fails in the worker
    and the client sees the *original* worker-side traceback, not a bare
    'job failed' status."""

    async def body(server):
        async with await AsyncServeClient.connect(port=server.port) as c:
            with pytest.raises(JobFailed) as exc:
                await c.submit("resolve_config", cores=16, wavelengths=4,
                               topology="awgr")
        return exc.value

    failure = serve_run(body, workers=1)
    assert failure.error.type == "ConfigError"
    assert "awgr needs" in failure.error.message
    msg = str(failure)
    assert "Traceback (most recent call last)" in msg
    assert "ConfigError" in msg and "awgr needs" in msg


def test_job_timeout_abandons_worker():
    async def body(server):
        async with await AsyncServeClient.connect(port=server.port) as c:
            with pytest.raises(JobFailed) as exc:
                await c.submit("echo", 1, sleep_s=2.0, timeout_s=0.25)
            status = await c.status()
        return exc.value, status

    failure, status = serve_run(body, workers=1)
    assert failure.error.type == "JobTimeout"
    assert failure.state == "timeout"
    assert status["stats"]["timeouts"] == 1
    # The lone worker slot was clogged by the straggler, so the pool
    # recycled the executor wholesale.
    assert status["pool"]["recycles"] >= 1


def test_worker_death_retries_then_fails():
    events = []

    async def body(server):
        async with await AsyncServeClient.connect(port=server.port) as c:
            with pytest.raises(JobFailed) as exc:
                await c.submit("die", quiet=False, on_event=events.append)
            status = await c.status()
        return exc.value, status

    failure, status = serve_run(
        body, workers=1, max_retries=2, backoff_base_s=0.01,
        operations={"die": "tests.test_serve_service:die_op"})
    assert failure.error.type == "WorkerDied"
    assert "2 attempts" in failure.error.message
    assert status["stats"]["retries"] == 1
    assert status["stats"]["failed"] == 1
    # The client watched the retry happen live.
    retrying = [e for e in events
                if e.get("event") == P.EV_STATE
                and e.get("state") == "retrying"]
    assert retrying and retrying[0]["attempt"] == 2


# --------------------------------------------------------- graceful drain
def test_sigterm_drains_in_flight_jobs():
    """SIGTERM stops admission immediately but in-flight jobs run to
    completion and their results reach waiting subscribers before the
    server exits."""

    async def body():
        server = SimulationServer(port=0, workers=1)
        await server.start()
        assert server.install_signal_handlers()
        async with await AsyncServeClient.connect(port=server.port) as c:
            pending = asyncio.ensure_future(
                c.submit("echo", "drain-me", sleep_s=0.5))
            while not server.table.active:
                await asyncio.sleep(0.005)

            os.kill(os.getpid(), signal.SIGTERM)
            while not server.draining:
                await asyncio.sleep(0.005)

            # New work is refused the moment draining begins...
            with pytest.raises(Shed) as exc:
                await c.submit("echo", "too-late")
            assert exc.value.reason == "draining"

            # ...but the in-flight job still delivers its result.
            assert await pending == "drain-me"
        await asyncio.wait_for(server.wait_closed(), timeout=10)
        return server

    server = asyncio.run(body())
    assert server.table.stats.completed == 1
    assert server.table.stats.shed == 1
    assert server.table.stats.cancelled == 0


# ------------------------------------------------------ HTTP + wire errors
def test_http_shim_endpoints():
    async def body(server):
        async def get(path):
            r, w = await asyncio.open_connection("127.0.0.1", server.port)
            w.write(f"GET {path} HTTP/1.1\r\nHost: t\r\n\r\n".encode())
            await w.drain()
            raw = await r.read()
            w.close()
            head, _, payload = raw.partition(b"\r\n\r\n")
            return head.split(b"\r\n")[0], json.loads(payload)

        status, health = await get("/healthz")
        assert status == b"HTTP/1.1 200 OK"
        assert health == {"ok": True, "draining": False, "depth": 0}

        _, metrics = await get("/metrics")
        assert metrics["status"]["version"] == P.PROTOCOL_VERSION
        assert "stats" in metrics["status"] and "obs" in metrics

        _, jobs = await get("/jobs")
        assert jobs == {"jobs": []}

        status, err = await get("/nope")
        assert status == b"HTTP/1.1 404 Not Found"
        assert "/healthz" in err["paths"]

    serve_run(body)


def test_http_jobs_reports_abandoned_job_as_terminal_timeout():
    """Regression: a job abandoned at its deadline must show up on the
    ``/jobs`` endpoint in the terminal ``timeout`` state with a typed
    error — not linger as ``running``.  (The worker may still be
    crunching, but the *job* is over; reporting it as running made
    operators wait on work the service had already written off.)"""

    async def body(server):
        async with await AsyncServeClient.connect(port=server.port) as c:
            with pytest.raises(JobFailed) as exc:
                await c.submit("echo", 1, sleep_s=3.0, timeout_s=0.2)
            assert exc.value.state == "timeout"

        r, w = await asyncio.open_connection("127.0.0.1", server.port)
        w.write(b"GET /jobs HTTP/1.1\r\nHost: t\r\n\r\n")
        await w.drain()
        raw = await r.read()
        w.close()
        _, _, payload = raw.partition(b"\r\n\r\n")
        jobs = json.loads(payload)["jobs"]

        assert len(jobs) == 1
        entry = jobs[0]
        assert entry["state"] == "timeout"          # terminal, not running
        assert entry["fn"].endswith("echo")
        assert "JobTimeout" in entry["error"]       # typed, actionable
        assert "0.2" in entry["error"]              # the deadline it blew
        assert entry["elapsed_s"] > 0
        # And the wire-protocol listing agrees with the HTTP shim.
        async with await AsyncServeClient.connect(port=server.port) as c:
            wire = await c.jobs()
        assert [(j["id"], j["state"]) for j in wire] == \
            [(entry["id"], "timeout")]

    serve_run(body, workers=1)


def test_wire_protocol_errors():
    async def body(server):
        # Raw garbage and unknown ops answer with error events — the
        # connection survives both.
        r, w = await asyncio.open_connection("127.0.0.1", server.port)
        w.write(b"certainly not json\n")
        await w.drain()
        ev = json.loads(await r.readline())
        assert ev["event"] == P.EV_ERROR

        w.write(P.encode_frame({"op": "warp", "req": 9}))
        await w.drain()
        ev = json.loads(await r.readline())
        assert ev["event"] == P.EV_ERROR and "unknown op" in ev["error"]
        assert ev["req"] == 9
        w.close()

        async with await AsyncServeClient.connect(port=server.port) as c:
            with pytest.raises(P.ProtocolError, match="unknown operation"):
                await c.submit("not_an_op")
            pong = await c.ping()
            assert pong["version"] == P.PROTOCOL_VERSION
            assert await c.jobs() == []

    serve_run(body)


# ------------------------------------------------------------------- CLI
@pytest.fixture()
def threaded_server():
    """A live server on a background thread, for the blocking CLI client."""
    box: dict = {}
    started = threading.Event()

    def run():
        async def amain():
            server = SimulationServer(port=0, workers=1)
            await server.start()
            box["server"] = server
            box["loop"] = asyncio.get_running_loop()
            started.set()
            await server.wait_closed()

        asyncio.run(amain())

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert started.wait(10), "server thread failed to start"
    yield box["server"]
    box["loop"].call_soon_threadsafe(
        lambda: asyncio.ensure_future(box["server"].aclose()))
    thread.join(timeout=10)


def test_cli_submit_round_trip(threaded_server, capsys):
    port = str(threaded_server.port)
    assert main(["submit", "--port", port, "--ping"]) == 0
    assert json.loads(capsys.readouterr().out)["version"] == \
        P.PROTOCOL_VERSION

    assert main(["submit", "echo", "--params",
                 '{"value": {"x": [1, 2]}}', "--port", port]) == 0
    assert json.loads(capsys.readouterr().out) == {"x": [1, 2]}

    assert main(["submit", "--port", port, "--status"]) == 0
    status = json.loads(capsys.readouterr().out)
    assert status["stats"]["completed"] == 1


def test_cli_submit_reports_worker_traceback(threaded_server, capsys):
    """The CLI regression for satellite 3: a worker-side ConfigError lands
    on stderr with the original traceback, exit code 1."""
    rc = main(["submit", "resolve_config", "--params",
               '{"cores": 16, "wavelengths": 4, "topology": "awgr"}',
               "--port", str(threaded_server.port)])
    assert rc == 1
    err = capsys.readouterr().err
    assert "ConfigError" in err
    assert "awgr needs" in err
    assert "Traceback (most recent call last)" in err
