"""Property suite pinning the synthetic generator honest (satellite 1).

Four promises, each a hypothesis property:

* **byte determinism** — same profile + same seed means byte-identical
  binary output, whether the trace is streamed to disk or materialized
  and dumped;
* **capture invariants** — every generated trace passes the full
  invariant catalogue (``repro.validate.invariants.check_trace``) and
  ``Trace.validate``, at every pattern and fan-out level;
* **acyclicity at scale** — ``generate(profile, scale=N)`` stays a valid
  DAG as the scale knob moves (validate runs Kahn's algorithm);
* **fit fidelity** — a fitted-then-regenerated trace reproduces the
  source trace's gap / fan-out / sharing / size statistics within the
  pinned :data:`repro.synth.FIDELITY_TOLERANCES`.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import TRACE_NAIVE, TraceConfig
from repro.core import replay_trace, tracebin
from repro.harness.builders import backend_in_order_channels, optical_factory
from repro.synth import (
    FIDELITY_TOLERANCES,
    default_profile,
    fit_profile,
    generate,
    generate_to_file,
    trace_stats,
)
from repro.synth.topologies import synth_onoc
from repro.validate import invariants as inv

# 16, 64, 256 are all squares *and* powers of two, so every pattern in
# the traffic catalogue is structurally legal at every size.
_NODE_CHOICES = (16, 64, 256)
_PATTERN_CHOICES = ("uniform", "bit_complement", "bit_reverse", "transpose",
                    "neighbor", "tornado", "hotspot")


@st.composite
def profiles(draw):
    nodes = draw(st.sampled_from(_NODE_CHOICES))
    pattern = draw(st.sampled_from(_PATTERN_CHOICES))
    return default_profile(
        nodes,
        draw(st.integers(600, 2200)),
        pattern,
        chains=draw(st.integers(4, 48)),
        fanout_prob=draw(st.floats(0.0, 0.4)),
        gap_mean=draw(st.floats(2.0, 40.0)),
    )


# --------------------------------------------------------- byte determinism

@given(profiles(), st.integers(0, 2**32 - 1))
@settings(max_examples=12, deadline=None)
def test_same_seed_means_byte_identical_output(tmp_path_factory, profile,
                                               seed):
    tmp = tmp_path_factory.mktemp("synth")
    a, b = tmp / "a.rtrc", tmp / "b.rtrc"
    generate_to_file(profile, a, seed=seed)
    generate_to_file(profile, b, seed=seed)
    blob_a = a.read_bytes()
    assert blob_a == b.read_bytes()
    # ... and the streaming writer emits the exact bytes the in-memory
    # path would: generate + dumps is the same file.
    assert blob_a == tracebin.dumps(generate(profile, seed=seed))


@given(profiles())
@settings(max_examples=8, deadline=None)
def test_different_seeds_differ(profile):
    assert (tracebin.dumps(generate(profile, seed=1))
            != tracebin.dumps(generate(profile, seed=2)))


# ------------------------------------------------------ invariant catalogue

@given(profiles(), st.integers(0, 2**32 - 1))
@settings(max_examples=12, deadline=None)
def test_generated_traces_pass_invariant_catalogue(profile, seed):
    trace = generate(profile, seed=seed)  # generate() runs Trace.validate
    assert inv.check_trace(trace, strict_fifo=False) == []


@given(st.integers(0, 2**32 - 1))
@settings(max_examples=6, deadline=None)
def test_generated_traces_replay_invariant_clean(seed):
    profile = default_profile(16, 1200, chains=8, gap_mean=30.0)
    trace = generate(profile, seed=seed)
    onoc = synth_onoc("crossbar", 16)
    result = replay_trace(
        trace, optical_factory(onoc, 7),
        TraceConfig(mode=TRACE_NAIVE, engine="generational"))
    strict = backend_in_order_channels(onoc.topology)
    assert inv.check_replay(trace, result, strict_fifo=strict) == []


# --------------------------------------------------------- scale stays a DAG

@given(st.sampled_from((0.1, 0.5, 1.0, 2.5)), st.integers(0, 2**16))
@settings(max_examples=10, deadline=None)
def test_acyclic_and_valid_at_every_scale(scale, seed):
    profile = default_profile(64, 1500, chains=24, fanout_prob=0.25)
    trace = generate(profile, scale=scale, seed=seed)  # validate() inside
    assert len(trace) == profile.scaled_messages(scale)
    assert inv.check_trace(trace, strict_fifo=False) == []


# ------------------------------------------------------------- fit fidelity

@given(st.integers(0, 2**16), st.sampled_from(("uniform", "hotspot")))
@settings(max_examples=6, deadline=None)
def test_fitted_profiles_reproduce_source_statistics(seed, pattern):
    source_profile = default_profile(
        64, 4000, pattern, chains=64, fanout_prob=0.15, gap_mean=18.0)
    source = generate(source_profile, seed=seed)
    fitted = fit_profile(source)
    assert fitted.pattern == pattern  # the entropy heuristic identifies it
    regen = generate(fitted, seed=seed + 1)

    want, got = trace_stats(source), trace_stats(regen)
    tol = FIDELITY_TOLERANCES
    assert got["gap_mean"] == pytest.approx(
        want["gap_mean"], rel=tol["gap_mean_rel_pct"] / 100.0)
    assert got["mean_size"] == pytest.approx(
        want["mean_size"], rel=tol["mean_size_rel_pct"] / 100.0)
    assert abs(got["multi_child_frac"] - want["multi_child_frac"]) \
        <= tol["multi_child_frac_abs"]
    assert abs(got["dest_entropy_ratio"] - want["dest_entropy_ratio"]) \
        <= tol["dest_entropy_ratio_abs"]


def test_fit_round_trips_through_json(tmp_path):
    trace = generate(default_profile(16, 1500), seed=9)
    profile = fit_profile(trace)
    path = tmp_path / "profile.json"
    path.write_text(profile.to_json())
    from repro.synth import SynthProfile
    assert SynthProfile.load(path) == profile
