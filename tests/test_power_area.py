"""Area-model tests."""

from __future__ import annotations

import pytest

from repro.config import NocConfig, OnocConfig
from repro.onoc import awgr_ring_census, crossbar_ring_census, mesh_ring_census
from repro.power import AreaConfig, AreaReport, electrical_area, optical_area


def test_area_config_validation():
    with pytest.raises(ValueError):
        AreaConfig(ring_mm2=-1)


def test_report_total_is_component_sum():
    rep = AreaReport("x", {"a": 1.0, "b": 2.5})
    assert rep.total_mm2 == 3.5
    row = rep.as_row()
    assert row["total_mm2"] == 3.5 and row["a"] == 1.0


def test_electrical_area_positive_components():
    rep = electrical_area(NocConfig())
    assert set(rep.components) == {"buffers", "crossbars", "links"}
    assert all(v > 0 for v in rep.components.values())


def test_electrical_area_scales_with_buffers():
    small = electrical_area(NocConfig(num_vcs=2, vc_depth=4))
    big = electrical_area(NocConfig(num_vcs=4, vc_depth=8))
    assert big.components["buffers"] == pytest.approx(
        4 * small.components["buffers"])


def test_electrical_area_grows_with_network():
    small = electrical_area(NocConfig(width=2, height=2))
    big = electrical_area(NocConfig(width=8, height=8))
    assert big.total_mm2 > small.total_mm2


@pytest.mark.parametrize("topology", ["mesh", "torus", "ring"])
def test_electrical_area_all_topologies(topology):
    cfg = (NocConfig(topology=topology, width=8, height=1, num_vcs=2)
           if topology == "ring" else NocConfig(topology=topology))
    assert electrical_area(cfg).total_mm2 > 0


def test_optical_area_ring_count_dominates_mwsr():
    cfg = OnocConfig()
    rep = optical_area(cfg, crossbar_ring_census(16, 64))
    assert rep.components["rings"] > rep.components["waveguides"]


def test_optical_area_awgr_smaller_than_mwsr():
    cfg = OnocConfig()
    mwsr = optical_area(cfg, crossbar_ring_census(16, 64))
    awgr = optical_area(OnocConfig(topology="awgr"),
                        awgr_ring_census(16, 64))
    assert awgr.total_mm2 < mwsr.total_mm2


def test_optical_area_circuit_mesh():
    cfg = OnocConfig(topology="circuit_mesh")
    rep = optical_area(cfg, mesh_ring_census(16, 64))
    assert rep.total_mm2 > 0
