"""Offline iterative-refinement tests."""

from __future__ import annotations

import pytest

from repro.config import (
    CacheConfig,
    ExperimentConfig,
    NocConfig,
    OnocConfig,
    SystemConfig,
)
from repro.core import IterativeRefiner
from repro.harness import optical_factory, run_execution_driven


def small_exp(seed=5):
    return ExperimentConfig(
        system=SystemConfig(
            num_cores=4,
            l1=CacheConfig(size_bytes=1024, assoc=2, line_bytes=64, hit_latency=1),
            l2_slice=CacheConfig(size_bytes=4096, assoc=4, line_bytes=64, hit_latency=4),
            mem_latency=30, num_mem_ctrls=2,
        ),
        noc=NocConfig(width=2, height=2),
        onoc=OnocConfig(num_nodes=4, num_wavelengths=16),
        seed=seed,
    )


@pytest.fixture(scope="module")
def setting():
    exp = small_exp()
    _, trace, _ = run_execution_driven(exp, "randshare", "electrical")
    res_o, _, _ = run_execution_driven(exp, "randshare", "optical",
                                       capture=False)
    return exp, trace, res_o.exec_time_cycles


def test_first_pass_equals_naive_schedule(setting):
    exp, trace, _ = setting
    r = IterativeRefiner(trace, optical_factory(exp.onoc, exp.seed),
                         max_iterations=1).run()
    # One pass means the captured schedule was replayed verbatim.
    hist = r.extra["history"]
    assert len(hist) == 1
    assert hist[0].iteration == 0
    assert hist[0].rel_change == float("inf")


def test_iteration_reduces_error(setting):
    exp, trace, ref_exec = setting
    r = IterativeRefiner(trace, optical_factory(exp.onoc, exp.seed),
                         max_iterations=8, convergence_tol=1e-3).run()
    hist = r.extra["history"]
    first_err = abs(hist[0].exec_time_estimate - ref_exec) / ref_exec
    last_err = abs(hist[-1].exec_time_estimate - ref_exec) / ref_exec
    assert last_err < first_err
    assert last_err < 0.10


def test_convergence_stops_early(setting):
    exp, trace, _ = setting
    r = IterativeRefiner(trace, optical_factory(exp.onoc, exp.seed),
                         max_iterations=20, convergence_tol=5e-2).run()
    assert r.extra["iterations"] < 20
    assert r.extra["history"][-1].rel_change <= 5e-2


def test_history_monotone_timestamps(setting):
    exp, trace, _ = setting
    r = IterativeRefiner(trace, optical_factory(exp.onoc, exp.seed),
                         max_iterations=4).run()
    iters = [h.iteration for h in r.extra["history"]]
    assert iters == list(range(len(iters)))


def test_mode_label(setting):
    exp, trace, _ = setting
    r = IterativeRefiner(trace, optical_factory(exp.onoc, exp.seed),
                         max_iterations=2).run()
    assert r.mode == "iterative_self_correcting"


def test_parameter_validation(setting):
    exp, trace, _ = setting
    factory = optical_factory(exp.onoc, exp.seed)
    with pytest.raises(ValueError):
        IterativeRefiner(trace, factory, max_iterations=0)
    with pytest.raises(ValueError):
        IterativeRefiner(trace, factory, convergence_tol=0)
    with pytest.raises(ValueError):
        IterativeRefiner(trace, factory, damping=0.0)
    with pytest.raises(ValueError):
        IterativeRefiner(trace, factory, damping=1.5)


def test_undamped_variant_runs(setting):
    exp, trace, _ = setting
    r = IterativeRefiner(trace, optical_factory(exp.onoc, exp.seed),
                         max_iterations=3, damping=1.0).run()
    assert r.extra["iterations"] >= 1
