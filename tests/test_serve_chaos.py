"""Chaos tests for the serve fabric: seeded kills, restarts, drain churn.

The invariant under test is *zero lost jobs*: whatever a node does —
dies mid-stream, refuses connections, drains away — every submitted job
either completes with the correct (byte-identical) result via a survivor,
or fails with a *typed* response the client can act on (``Shed`` with a
reason, ``ServerClosed``); never a hang, never a wrong answer.

All failure injection is seeded (``random.Random(SEED)``) so a failing
run replays exactly.  Clusters are the in-process kind from
``test_serve_fabric`` — real sockets, real gossip, real kills via
``aclose()`` (listener gone, in-flight jobs cancelled, pool shot).
"""

from __future__ import annotations

import asyncio
import random

import pytest

from repro.serve import (
    AsyncServeClient,
    JobFailed,
    ServerClosed,
    Shed,
    SimulationServer,
)
from tests.test_serve_fabric import (
    _canon,
    _key_on,
    _local,
    converge,
    payload_owned_by,
    start_cluster,
    stop_cluster,
)

SEED = 0xC0FFEE


async def resilient_submit(clients, order, payload, **kw):
    """Submit through nodes in ``order``, failing over on dead ones.

    This is the documented client-side recovery contract: a typed
    connection failure (refused, reset, job cancelled by shutdown) means
    "try another node" — safe because jobs are content-keyed and
    idempotent.  Anything else propagates.
    """
    last: Exception | None = None
    for idx in order:
        try:
            return await clients[idx].submit("echo", payload, **kw)
        except (ServerClosed, ConnectionRefusedError, OSError) as exc:
            last = exc
        except JobFailed as exc:
            if exc.state != "cancelled":
                raise
            last = exc
    raise last  # pragma: no cover - all nodes dead means a test bug


# --------------------------------------------------------- seeded kill
def test_seeded_kill_mid_load_no_lost_jobs(tmp_path):
    """Kill one (seeded) node while 24 jobs are in flight across all
    three: every job still completes byte-identically through the
    survivors, the survivors re-shard (the dead node leaves both rings,
    and both route its keys identically), and a restarted node with the
    same id rejoins and serves again."""
    rng = random.Random(SEED)

    async def body():
        servers = await start_cluster(n=3, tmp_path=tmp_path, workers=2,
                                      max_pending=64)
        clients = [await AsyncServeClient.connect(port=s.port)
                   for s in servers]
        replacement = None
        try:
            victim_idx = rng.randrange(3)
            victim = servers[victim_idx]
            victim_id = victim.node_id
            survivors = [s for s in servers if s is not victim]
            survivor_idx = [i for i in range(3) if i != victim_idx]

            payloads = [{"chaos": i} for i in range(24)]
            entry_order = [
                [i % 3] + survivor_idx for i in range(len(payloads))]
            rng.shuffle(entry_order)

            async def one(i):
                return await resilient_submit(
                    clients, entry_order[i], payloads[i], sleep_s=0.15)

            submits = [asyncio.ensure_future(one(i))
                       for i in range(len(payloads))]
            await asyncio.sleep(0.1)        # let the load get in flight
            await victim.aclose()           # hard kill, no leave announce

            results = await asyncio.wait_for(
                asyncio.gather(*submits), timeout=60)
            for payload, result in zip(payloads, results):
                assert _canon(result) == _local(payload, sleep_s=0.15)

            # Failure detection + re-shard: any survivor still believing
            # in the victim discovers the death on its next forward and
            # drops it; afterwards both rings agree on every key.
            for s, c in zip(survivors,
                            (clients[i] for i in survivor_idx)):
                if victim_id in s.membership.members:
                    flush = payload_owned_by(s, victim_id, "flush")
                    assert await c.submit("echo", flush) == flush
                assert victim_id not in s.membership.members
                assert s.table.stats.failed == 0
            for i in range(16):
                key = _key_on(survivors[0], {"route-check": i})
                assert (survivors[0].membership.owner(key)
                        == survivors[1].membership.owner(key))

            # Restart: same node id, fresh port, seeded with one
            # survivor — gossip re-propagates it to the whole fabric...
            replacement = SimulationServer(
                port=0, node_id=victim_id, workers=1,
                cache_dir=str(tmp_path / "reborn"),
                peers=[f"127.0.0.1:{survivors[0].port}"])
            await replacement.start()
            await converge([replacement, *survivors])

            # ...and it owns keys again: a submit entering a survivor for
            # a key it owns is forwarded to and executed by the reborn
            # node.
            back = payload_owned_by(survivors[0], victim_id, "reborn")
            async with await AsyncServeClient.connect(
                    port=survivors[0].port) as c:
                assert await c.submit("echo", back) == back
            assert replacement.table.stats.executed == 1
        finally:
            for c in clients:
                await c.close()
            if replacement is not None:
                await replacement.aclose()
            await stop_cluster(servers)

    asyncio.run(body())


def test_owner_dying_mid_stream_falls_back_to_forwarder(tmp_path):
    """The nastiest path, deterministically: a forwarded job is *running*
    on its owner when the owner dies.  The forwarder detects the broken
    relay before any terminal event, removes the owner, and re-runs the
    job locally — the client sees one submit complete correctly."""

    async def body():
        servers = await start_cluster(n=2, tmp_path=tmp_path, workers=1)
        entry, owner = servers[0], servers[1]
        try:
            # The probe must use the same kwargs as the submit below: the
            # routing key hashes the whole canonical task, kwargs included.
            payload = payload_owned_by(entry, "n1", "mid-stream",
                                       sleep_s=0.6)
            async with await AsyncServeClient.connect(
                    port=entry.port) as c:
                pending = asyncio.ensure_future(
                    c.submit("echo", payload, sleep_s=0.6))
                while not owner.table.active:       # forwarded + admitted
                    await asyncio.sleep(0.005)
                await owner.aclose()
                result = await asyncio.wait_for(pending, timeout=30)
            assert _canon(result) == _local(payload, sleep_s=0.6)
            assert entry.table.stats.forwarded == 1
            assert entry.table.stats.forward_failed == 1
            assert entry.table.stats.executed == 1      # local fallback
            assert "n1" not in entry.membership.members
        finally:
            await stop_cluster(servers)

    asyncio.run(body())


# ------------------------------------------------------ drain + churn
def test_drain_under_churn(tmp_path):
    """Graceful drain while the fabric churns: the draining node delivers
    its in-flight job, sheds new work with a typed reason, announces
    ``leave`` so peers re-shard *before* it exits — all while a brand-new
    node joins through a different peer.  The fabric ends converged on
    the post-churn membership and still serves."""

    async def body():
        servers = await start_cluster(n=3, tmp_path=tmp_path, workers=1)
        a, b, c_node = servers
        joiner = None
        try:
            # A key the draining node owns *before* the churn, to prove
            # its share of the ring is served afterwards.
            moved = payload_owned_by(a, "n1", "post-drain")
            # The in-flight job must be *owned* by the draining node (the
            # routing key includes kwargs, hence the matching sleep_s) so
            # it runs there rather than being forwarded away.
            inflight = payload_owned_by(b, "n1", "inflight", sleep_s=0.4)

            async with await AsyncServeClient.connect(port=b.port) as cb:
                pending = asyncio.ensure_future(
                    cb.submit("echo", inflight, sleep_s=0.4))
                while not b.table.active:
                    await asyncio.sleep(0.005)

                b.begin_drain()
                while not b.draining:
                    await asyncio.sleep(0.005)

                # Typed degraded-mode response: refused with a reason the
                # client can branch on, not a hang or a bare disconnect.
                with pytest.raises(Shed) as exc:
                    await cb.submit("echo", {"too": "late"})
                assert exc.value.reason == "draining"

                # The leave announcement re-shards peers while the drain
                # is still delivering in-flight work.
                while ("n1" in a.membership.members
                       or "n1" in c_node.membership.members):
                    await asyncio.sleep(0.005)

                # Churn during the drain: a fourth node joins via a.
                joiner = SimulationServer(
                    port=0, node_id="n3", workers=1,
                    cache_dir=str(tmp_path / "joiner"),
                    peers=[f"127.0.0.1:{a.port}"])
                await joiner.start()

                # The in-flight job still delivers through the drain.
                assert await asyncio.wait_for(
                    pending, timeout=30) == inflight
            await asyncio.wait_for(b.wait_closed(), timeout=30)

            # Leave propagated, join propagated: survivors converge on
            # exactly {a, c, joiner} and route identically.
            remaining = [a, c_node, joiner]
            await converge(remaining)
            for s in remaining:
                assert set(s.membership.members) == {"n0", "n2", "n3"}

            # The post-churn fabric serves, including keys the drained
            # node used to own.
            async with await AsyncServeClient.connect(port=a.port) as ca:
                assert await ca.submit("echo", moved) == moved
            assert b.table.stats.shed == 1
            assert b.table.stats.completed == 1
            assert b.table.stats.cancelled == 0
        finally:
            if joiner is not None:
                await joiner.aclose()
            await stop_cluster(servers)

    asyncio.run(body())


def test_queue_full_shed_is_typed_on_fabric_node(tmp_path):
    """Admission-control shed on a fabric node carries the structured
    reason and depth (degraded mode stays typed with peers attached)."""

    async def body():
        servers = await start_cluster(n=2, tmp_path=tmp_path, workers=1,
                                      max_pending=1)
        entry = servers[0]
        try:
            # Fill the entry node's queue with a job it owns locally
            # (kwargs are part of the routing key, so the probe matches
            # the submit).
            mine = payload_owned_by(entry, "n0", "clog", sleep_s=0.4)
            extra = payload_owned_by(entry, "n0", "overflow")
            async with await AsyncServeClient.connect(
                    port=entry.port) as c:
                slow = asyncio.ensure_future(
                    c.submit("echo", mine, sleep_s=0.4))
                while not entry.table.active:
                    await asyncio.sleep(0.005)
                with pytest.raises(Shed) as exc:
                    await c.submit("echo", extra)
                assert "queue full" in exc.value.reason
                assert exc.value.depth == 1
                assert await asyncio.wait_for(slow, timeout=30) == mine
        finally:
            await stop_cluster(servers)

    asyncio.run(body())
