"""repro.exp schema + config resolution tests.

Pins the declarative layer's validation contract: typed parameter specs,
``extend:`` chain semantics (root-first resolution, leaf wins), unknown-key
rejection at both the file and parameter level, and the canonical forms
(list -> tuple) that keep config-compiled tasks cache-identical to the
hand-written bench construction.
"""

from __future__ import annotations

import json

import pytest

from repro.exp import (
    ParamSchema,
    ParamSpec,
    SchemaError,
    config_hash,
    discover_configs,
    parse_set_override,
    resolve_config,
    specs,
)
from repro.exp.config import ConfigFileError, GateSpec, load_config_file


# ------------------------------------------------------------------ schema
def test_spec_rejects_unknown_kind():
    with pytest.raises(SchemaError, match="unknown kind"):
        ParamSpec("x", "complex")


def test_int_accepted_for_float_and_coerced():
    s = ParamSpec("scale", "float", 1.0)
    out = s.coerce(2)
    assert out == 2.0 and isinstance(out, float)


def test_bool_is_not_an_int():
    s = ParamSpec("cores", "int", 16)
    with pytest.raises(SchemaError, match="expects int"):
        s.coerce(True)


def test_bool_kind_rejects_int():
    s = ParamSpec("flag", "bool", False)
    with pytest.raises(SchemaError, match="expects bool"):
        s.coerce(1)


def test_list_canonicalized_to_tuple():
    s = ParamSpec("workloads", "list[str]", ("fft",))
    assert s.coerce(["fft", "lu"]) == ("fft", "lu")


def test_list_item_type_checked():
    s = ParamSpec("rates", "list[float]", ())
    with pytest.raises(SchemaError, match=r"'rates'\[1\] expects float"):
        s.coerce([0.1, "high"])


def test_choices_enforced():
    s = ParamSpec("engine", "str", "event", ("event", "vector"))
    assert s.coerce("vector") == "vector"
    with pytest.raises(SchemaError, match="must be one of"):
        s.coerce("warp")


def test_schema_rejects_unknown_parameter():
    sch = specs(("cores", "int", 16), ("seed", "int", 7))
    with pytest.raises(SchemaError, match="unknown parameter"):
        sch.resolve({"coers": 8})


def test_schema_fills_defaults():
    sch = specs(("cores", "int", 16), ("seed", "int", 7))
    assert sch.resolve({"seed": 11}) == {"cores": 16, "seed": 11}


def test_duplicate_specs_rejected():
    with pytest.raises(SchemaError, match="duplicate"):
        ParamSchema((ParamSpec("a", "int"), ParamSpec("a", "int")))


# ------------------------------------------------- config files + extend:
def write_cfg(path, payload):
    path.write_text(json.dumps(payload))
    return path


def test_load_rejects_unknown_top_level_key(tmp_path):
    p = write_cfg(tmp_path / "c.json", {"experiment": "area", "params": {}})
    with pytest.raises(ConfigFileError, match="unknown top-level key"):
        load_config_file(p)


def test_extend_chain_leaf_wins_root_first(tmp_path):
    root = write_cfg(
        tmp_path / "root.json",
        {"experiment": "area", "parameters": {"cores": 4, "seed": 3}},
    )
    mid = write_cfg(
        tmp_path / "mid.json",
        {"extend": root.name, "parameters": {"seed": 11}},
    )
    leaf = write_cfg(
        tmp_path / "leaf.json",
        {"extend": mid.name, "name": "leafy", "parameters": {"seed": 23}},
    )
    cfg = resolve_config(leaf)
    # root supplied cores, the leaf-most seed override wins
    assert cfg.parameters["cores"] == 4
    assert cfg.parameters["seed"] == 23
    assert cfg.experiment == "area"
    assert cfg.name == "leafy"
    # chain recorded root-first, leaf-last
    assert [c.endswith(n) for c, n in
            zip(cfg.chain, ("root.json", "mid.json", "leaf.json"))] == [
        True, True, True]


def test_extend_cycle_detected(tmp_path):
    a = tmp_path / "a.json"
    b = tmp_path / "b.json"
    write_cfg(a, {"extend": "b.json", "experiment": "area"})
    write_cfg(b, {"extend": "a.json"})
    with pytest.raises(ConfigFileError, match="cycle"):
        resolve_config(a)


def test_experiment_required_somewhere_in_chain(tmp_path):
    p = write_cfg(tmp_path / "c.json", {"parameters": {"cores": 4}})
    with pytest.raises(ConfigFileError, match="experiment"):
        resolve_config(p)


def test_unknown_experiment_rejected(tmp_path):
    p = write_cfg(tmp_path / "c.json", {"experiment": "warp_field"})
    with pytest.raises(SchemaError, match="warp_field"):
        resolve_config(p)


def test_unknown_parameter_names_the_file(tmp_path):
    p = write_cfg(
        tmp_path / "c.json",
        {"experiment": "area", "parameters": {"coers": 8}},
    )
    with pytest.raises(SchemaError, match="unknown parameter"):
        resolve_config(p)


def test_parameter_type_validated_through_resolve(tmp_path):
    p = write_cfg(
        tmp_path / "c.json",
        {"experiment": "area", "parameters": {"cores": "sixteen"}},
    )
    with pytest.raises(SchemaError, match="expects int"):
        resolve_config(p)


def test_cli_overrides_beat_the_whole_chain(tmp_path):
    p = write_cfg(
        tmp_path / "c.json",
        {"experiment": "area", "parameters": {"seed": 3}},
    )
    cfg = resolve_config(p, {"seed": 99})
    assert cfg.parameters["seed"] == 99


def test_list_parameters_resolve_to_tuples(tmp_path):
    p = write_cfg(
        tmp_path / "c.json",
        {"experiment": "accuracy", "parameters": {"workloads": ["fft", "lu"]}},
    )
    cfg = resolve_config(p)
    assert cfg.parameters["workloads"] == ("fft", "lu")


def test_gate_merges_leaf_over_root(tmp_path):
    root = write_cfg(
        tmp_path / "root.json",
        {
            "experiment": "area",
            "gate": {"default_tolerance_pct": 1.0,
                     "tolerances": {"*.wall_clock_s": None}},
        },
    )
    leaf = write_cfg(
        tmp_path / "leaf.json",
        {"extend": root.name, "gate": {"default_tolerance_pct": 5.0}},
    )
    cfg = resolve_config(leaf)
    assert cfg.gate.default_tolerance_pct == 5.0
    assert cfg.gate.tolerance_for("x.wall_clock_s") is None
    assert cfg.gate.tolerance_for("fft.err") == 5.0


def test_config_hash_ignores_name_and_gate(tmp_path):
    a = write_cfg(
        tmp_path / "a.json",
        {"experiment": "area", "name": "one", "parameters": {"seed": 3}},
    )
    b = write_cfg(
        tmp_path / "b.json",
        {"experiment": "area", "name": "two", "parameters": {"seed": 3},
         "gate": {"default_tolerance_pct": 9.0}},
    )
    assert resolve_config(a).config_hash == resolve_config(b).config_hash


def test_config_hash_tracks_parameters():
    h1 = config_hash("area", {"seed": 3})
    h2 = config_hash("area", {"seed": 4})
    assert h1 != h2
    # tuples and lists hash identically (both canonical JSON lists)
    assert config_hash("x", {"w": ("fft",)}) == config_hash("x", {"w": ["fft"]})


def test_yaml_configs_load_when_pyyaml_present(tmp_path):
    pytest.importorskip("yaml")
    p = tmp_path / "c.yaml"
    p.write_text("experiment: area\nparameters:\n  seed: 5\n")
    cfg = resolve_config(p)
    assert cfg.parameters["seed"] == 5


def test_discover_configs_finds_checked_in_tree():
    found = discover_configs("benchmarks/experiments")
    names = {p.name for p in found}
    assert "fig4_accuracy.yaml" in names
    assert "area.yaml" in names  # base/ included


def test_parse_set_override_json_then_string():
    out = parse_set_override(
        ["scale=0.5", 'workloads=["fft"]', "engine=vector"])
    assert out == {"scale": 0.5, "workloads": ["fft"], "engine": "vector"}
    with pytest.raises(ConfigFileError, match="key=value"):
        parse_set_override(["scale"])
