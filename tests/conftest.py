"""Shared fixtures: small fast configs used across the suite."""

from __future__ import annotations

import pytest

from repro.config import (
    CacheConfig,
    ExperimentConfig,
    NocConfig,
    OnocConfig,
    SystemConfig,
)
from repro.engine import Simulator
from repro.noc import ElectricalNetwork
from repro.onoc import build_optical_network


# Hang insurance, mainly for the socket-heavy serve/fabric suites: a
# deadlocked await should fail with dumped stacks, not wedge the whole
# run.  Applied only when pytest-timeout is actually installed (it ships
# in the [dev] extras; bare environments still run the suite), and only
# to tests that don't declare their own tighter @pytest.mark.timeout.
DEFAULT_TEST_TIMEOUT_S = 120


def pytest_collection_modifyitems(config, items):
    if not config.pluginmanager.hasplugin("timeout"):
        return
    for item in items:
        if item.get_closest_marker("timeout") is None:
            item.add_marker(pytest.mark.timeout(DEFAULT_TEST_TIMEOUT_S))


@pytest.fixture
def sim() -> Simulator:
    return Simulator(seed=1234)


@pytest.fixture
def noc_cfg() -> NocConfig:
    return NocConfig()           # 4x4 mesh defaults


@pytest.fixture
def onoc_cfg() -> OnocConfig:
    return OnocConfig()          # 16-node crossbar defaults


@pytest.fixture
def small_system_cfg() -> SystemConfig:
    """4-core system with tiny caches (fast, eviction-heavy)."""
    return SystemConfig(
        num_cores=4,
        l1=CacheConfig(size_bytes=1024, assoc=2, line_bytes=64, hit_latency=1),
        l2_slice=CacheConfig(size_bytes=4096, assoc=4, line_bytes=64,
                             hit_latency=4),
        mem_latency=30,
        num_mem_ctrls=2,
    )


@pytest.fixture
def small_exp_cfg(small_system_cfg: SystemConfig) -> ExperimentConfig:
    return ExperimentConfig(
        system=small_system_cfg,
        noc=NocConfig(width=2, height=2),
        onoc=OnocConfig(num_nodes=4, num_wavelengths=16),
        seed=99,
    )


@pytest.fixture
def exp_cfg() -> ExperimentConfig:
    """Paper-style 16-core configuration."""
    return ExperimentConfig(seed=7)


def make_elec(sim: Simulator, cfg: NocConfig, **kw) -> ElectricalNetwork:
    return ElectricalNetwork(sim, cfg, **kw)


def make_opt(sim: Simulator, cfg: OnocConfig, **kw):
    return build_optical_network(sim, cfg, **kw)
