#!/usr/bin/env python3
"""Trace anatomy: capture a trace, save it to disk, reload it, and inspect
its dependency structure — the artifact the whole methodology revolves
around.

Run:  python examples/trace_inspection.py [workload]
"""

import pathlib
import sys
from collections import Counter

from repro import Trace, default_16core_config
from repro.core import profile_trace, sharing_summary
from repro.harness import format_table, run_execution_driven


def main(argv: list[str]) -> None:
    workload = argv[0] if argv else "randshare"
    exp = default_16core_config().with_seed(7)

    print(f"capturing {workload} on the electrical baseline ...")
    res, trace, _ = run_execution_driven(exp, workload, "electrical")

    out = pathlib.Path("/tmp/repro_trace.json")
    out.write_text(trace.to_json())
    reloaded = Trace.from_json(out.read_text())
    assert reloaded.records == trace.records
    print(f"saved + reloaded {out} ({out.stat().st_size // 1024} KiB), "
          "round-trip exact\n")

    kinds = Counter(r.kind for r in trace.records)
    rows = [{"kind": k, "count": c,
             "bytes": sum(r.size_bytes for r in trace.records if r.kind == k)}
            for k, c in kinds.most_common()]
    print(format_table(rows, title="Message mix"))

    profile = profile_trace(trace)
    print()
    print(format_table(profile.as_rows(), title="Trace profile"))
    print(f"\nAmdahl floor: the critical chain carries "
          f"{profile.critical_gap_sum} cycles of pure compute — no network "
          f"can finish this workload faster than that.")

    summary = sharing_summary(trace)
    print()
    print(format_table(
        [{"sharing class": k, "lines": v} for k, v in summary.items()],
        title="Line sharing classification"))

    print("\nfirst five records (msg_id, kind, src->dst, inject, cause, gap):")
    for r in trace.records[:5]:
        cause = "-" if r.cause_id == -1 else str(r.cause_id)
        print(f"  #{r.msg_id:<6} {r.kind:<12} {r.src:>2}->{r.dst:<2} "
              f"t={r.t_inject:<7} cause={cause:<6} gap={r.gap}")


if __name__ == "__main__":
    main(sys.argv[1:])
