#!/usr/bin/env python3
"""Synthetic network characterisation (the Fig.-3 style study, interactive).

Sweeps injection rate for a chosen pattern over the electrical mesh, the
optical crossbar and the circuit-switched optical mesh, printing the
load-latency series side by side, plus the physical-layer summary (loss
budget, laser power, ring census) for both optical designs.

Run:  python examples/network_characterization.py [pattern]
      (pattern: uniform | transpose | hotspot | tornado | neighbor | ...)
"""

import sys
from dataclasses import replace

from repro import default_16core_config
from repro.harness import format_table, load_latency_sweep
from repro.config import ONOC_CIRCUIT_MESH
from repro.noc import ElectricalNetwork
from repro.onoc import (
    LossBudget,
    build_optical_network,
    crossbar_ring_census,
    mesh_ring_census,
)
from repro.traffic import PATTERNS

RATES = (0.02, 0.05, 0.1, 0.15, 0.25, 0.35, 0.5)


def main(argv: list[str]) -> None:
    pattern = argv[0] if argv else "uniform"
    if pattern not in PATTERNS:
        raise SystemExit(f"unknown pattern {pattern!r}; one of {sorted(PATTERNS)}")
    exp = default_16core_config()
    mesh_onoc = replace(exp.onoc, topology=ONOC_CIRCUIT_MESH)

    networks = [
        ("electrical mesh", lambda sim: ElectricalNetwork(sim, exp.noc)),
        ("optical crossbar", lambda sim: build_optical_network(sim, exp.onoc)),
        ("optical circuit mesh",
         lambda sim: build_optical_network(sim, mesh_onoc)),
    ]
    rows = []
    for name, make in networks:
        print(f"sweeping {name} ...", flush=True)
        for p in load_latency_sweep(make, pattern, RATES, seed=exp.seed,
                                    warmup=300, measure=1500):
            rows.append({
                "network": name,
                "rate": p.injection_rate,
                "avg_latency": round(p.avg_latency, 1),
                "p99": p.p99_latency,
                "throughput": round(p.throughput_flits_cycle, 3),
                "saturated": p.saturated,
            })
    print()
    print(format_table(rows, title=f"Load-latency under '{pattern}' traffic"))

    # Where does the electrical mesh hurt?  Link-level heat map of one
    # full-system run (this is the analysis that motivates optical layers).
    from repro.engine import Simulator
    from repro.noc.metrics import analyze_links
    from repro.system import FullSystem, build_workload

    sim = Simulator(seed=exp.seed)
    net = ElectricalNetwork(sim, exp.noc)
    system = FullSystem(sim, exp.system, net,
                        build_workload("fft", exp.system.num_cores, exp.seed))
    res = system.run()
    link_rep = analyze_links(net, res.exec_time_cycles)
    print()
    print(format_table(
        [{"link": ld.label(), "flits": ld.flits,
          "utilization": round(ld.utilization, 4)}
         for ld in link_rep.hottest(5)],
        title="Hottest electrical links under fft "
              f"(imbalance {link_rep.imbalance:.1f}x, "
              f"bisection {link_rep.bisection_flits} flits)"))

    # Physical layer summary.
    budget_x = LossBudget(exp.onoc)
    budget_m = LossBudget(mesh_onoc)
    census_x = crossbar_ring_census(exp.onoc.num_nodes, exp.onoc.num_wavelengths)
    census_m = mesh_ring_census(mesh_onoc.num_nodes, mesh_onoc.num_wavelengths)
    phys = [
        {
            "design": "crossbar",
            "worst_loss_dB": round(budget_x.crossbar_worst_loss_db(), 2),
            "laser_mW": round(budget_x.laser_wallplug_mw(
                budget_x.crossbar_worst_loss_db(), exp.onoc.num_wavelengths,
                exp.onoc.num_nodes), 1),
            "rings": census_x.total,
        },
        {
            "design": "circuit mesh",
            "worst_loss_dB": round(budget_m.mesh_worst_loss_db(), 2),
            "laser_mW": round(budget_m.laser_wallplug_mw(
                budget_m.mesh_worst_loss_db(), mesh_onoc.num_wavelengths), 1),
            "rings": census_m.total,
        },
    ]
    print()
    print(format_table(phys, title="Photonic physical layer"))


if __name__ == "__main__":
    main(sys.argv[1:])
