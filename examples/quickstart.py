#!/usr/bin/env python3
"""Quickstart: the complete self-correction trace flow in ~40 lines.

1. Run the full-system CMP (16 cores, fft kernel) on the electrical
   baseline NoC, capturing a dependency-annotated trace.
2. Run the execution-driven reference on the optical crossbar.
3. Replay the trace on the optical crossbar twice — naive (timestamps) and
   self-correcting (the paper's model) — and compare accuracy and cost.

Run:  python examples/quickstart.py
"""

from repro import TraceConfig, compare_to_reference, default_16core_config, replay_trace
from repro.harness import optical_factory, run_execution_driven


def main() -> None:
    exp = default_16core_config().with_seed(7)

    print("1) capture run on the electrical 4x4 mesh ...")
    res_elec, trace, _ = run_execution_driven(exp, "fft", "electrical")
    print(f"   exec time {res_elec.exec_time_cycles} cycles, "
          f"{len(trace)} messages captured, "
          f"dependency depth {trace.dependency_depth()}")

    print("2) execution-driven reference on the 16-node optical crossbar ...")
    res_opt, ref_trace, _ = run_execution_driven(exp, "fft", "optical")
    print(f"   exec time {res_opt.exec_time_cycles} cycles "
          f"({res_elec.exec_time_cycles / res_opt.exec_time_cycles:.2f}x "
          "speedup over electrical)")

    factory = optical_factory(exp.onoc, exp.seed)
    for mode in ("naive", "self_correcting"):
        print(f"3) {mode} replay of the electrical trace on the ONOC ...")
        result = replay_trace(trace, factory, TraceConfig(mode=mode))
        report = compare_to_reference(result, ref_trace)
        print(f"   predicted exec {result.exec_time_estimate} cycles | "
              f"error {report.exec_time_error_pct:.2f}% | "
              f"mean-latency error {report.mean_latency_error_pct:.2f}% | "
              f"wall clock {result.wall_clock_s:.3f}s")

    print("\nThe self-correcting replay should sit within a few percent of "
          "the reference;\nthe naive replay carries the electrical network's "
          "timing and misses by 2-10x that.")


if __name__ == "__main__":
    main()
