#!/usr/bin/env python3
"""Design-space exploration — the trace model's raison d'être.

An architect sweeping ONOC design points cannot afford an execution-driven
full-system run per point.  With the self-correction trace model the
workload is captured ONCE (on the electrical baseline) and replayed against
every candidate network; this script sweeps the optical crossbar's
wavelength count and the circuit-switched mesh alternative, and cross-checks
two points against execution-driven references to show the replay stayed
accurate across the sweep.

Run:  python examples/design_space_exploration.py
"""

import time
from dataclasses import replace

from repro import TraceConfig, compare_to_reference, default_16core_config, replay_trace
from repro.config import ONOC_CIRCUIT_MESH
from repro.harness import format_table, optical_factory, run_execution_driven

WORKLOAD = "lu"
WAVELENGTH_SWEEP = (8, 16, 32, 64, 128)


def main() -> None:
    exp = default_16core_config().with_seed(7)

    print(f"capturing {WORKLOAD} once on the electrical baseline ...")
    t0 = time.perf_counter()
    _, trace, _ = run_execution_driven(exp, WORKLOAD, "electrical")
    capture_s = time.perf_counter() - t0
    print(f"  {len(trace)} messages in {capture_s:.2f}s\n")

    rows = []
    replay_total = 0.0
    for wl_count in WAVELENGTH_SWEEP:
        onoc = replace(exp.onoc, num_wavelengths=wl_count)
        result = replay_trace(trace, optical_factory(onoc, exp.seed),
                              TraceConfig(mode="self_correcting"))
        replay_total += result.wall_clock_s
        rows.append({
            "design point": f"crossbar {wl_count}λ",
            "predicted_exec": result.exec_time_estimate,
            "replay_s": round(result.wall_clock_s, 3),
        })
    for label, topology in (
        ("SWMR crossbar", "swmr_crossbar"),
        ("passive AWGR", "awgr"),
        ("circuit-switched mesh", ONOC_CIRCUIT_MESH),
    ):
        onoc = replace(exp.onoc, topology=topology)
        result = replay_trace(trace, optical_factory(onoc, exp.seed),
                              TraceConfig(mode="self_correcting"))
        replay_total += result.wall_clock_s
        rows.append({
            "design point": label,
            "predicted_exec": result.exec_time_estimate,
            "replay_s": round(result.wall_clock_s, 3),
        })
    print(format_table(rows, title=f"Sweep of ONOC design points ({WORKLOAD})"))
    print(f"\ntotal replay time for {len(rows)} design points: "
          f"{replay_total:.2f}s (one capture: {capture_s:.2f}s)")

    # Cross-check two points against execution-driven references.
    print("\ncross-checking replay accuracy at 16λ and 64λ ...")
    checks = []
    for wl_count in (16, 64):
        onoc = replace(exp.onoc, num_wavelengths=wl_count)
        exp_v = replace(exp, onoc=onoc)
        ref_res, ref_trace, _ = run_execution_driven(exp_v, WORKLOAD, "optical")
        result = replay_trace(trace, optical_factory(onoc, exp.seed),
                              TraceConfig(mode="self_correcting"))
        rep = compare_to_reference(result, ref_trace)
        checks.append({
            "design point": f"crossbar {wl_count}λ",
            "reference_exec": ref_res.exec_time_cycles,
            "predicted_exec": result.exec_time_estimate,
            "error_%": round(rep.exec_time_error_pct, 2),
        })
    print(format_table(checks, title="Replay vs execution-driven reference"))


if __name__ == "__main__":
    main()
