#!/usr/bin/env python3
"""The paper's case study, extended to the full kernel suite.

Runs every application kernel execution-driven on both interconnects and
prints the Table-3-style comparison (speedup, latency reduction), plus the
Table-4-style energy comparison for the headline workload.

Run:  python examples/case_study_onoc.py [workload ...]
"""

import sys

from repro import default_16core_config
from repro.harness import case_study, format_table, power_experiment
from repro.system import WORKLOADS


def main(argv: list[str]) -> None:
    exp = default_16core_config().with_seed(7)
    names = argv or sorted(WORKLOADS)
    bad = [n for n in names if n not in WORKLOADS]
    if bad:
        raise SystemExit(f"unknown workloads {bad}; available {sorted(WORKLOADS)}")

    rows = []
    for wl in names:
        print(f"running {wl} on both networks ...", flush=True)
        r = case_study(exp, wl)
        rows.append({
            "workload": r.workload,
            "exec_electrical": r.exec_electrical,
            "exec_optical": r.exec_optical,
            "speedup": round(r.speedup, 3),
            "lat_elec": round(r.avg_latency_electrical, 1),
            "lat_opt": round(r.avg_latency_optical, 1),
            "lat_cut_%": round(r.latency_reduction_pct, 1),
        })
    print()
    print(format_table(rows, title="Case study: ONOC vs electrical baseline"))

    headline = names[0]
    print(f"\nenergy for '{headline}' ...")
    rep_e, rep_o = power_experiment(exp, headline)
    print(format_table([rep_e.as_row(), rep_o.as_row()],
                       title="Energy over the run"))
    print("\nNote the ONOC's static power (laser + ring tuning) dominating "
          "at this utilisation\n— the energy-proportionality caveat recorded "
          "in EXPERIMENTS.md.")


if __name__ == "__main__":
    main(sys.argv[1:])
