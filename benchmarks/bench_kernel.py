"""Event-kernel fast path: events/sec, before vs after.

The "before" is a faithful embedded copy of the original kernel (Event
objects on the heap, ordered via ``Event.__lt__``, ``peek_time``/``pop``
run loop).  The "after" is the live :class:`repro.engine.Simulator` with
its tuple-keyed heap, bulk ``schedule_many`` preload and hoisted run loop.
Both execute identical workloads:

* ``preload`` — the replayer shape: schedule the full event set up front
  (one ``push`` per event before; one ``schedule_many`` batch after),
  then drain.
* ``churn`` — the execution-driven shape: a fixed set of actors that each
  reschedule themselves from inside their callback until the budget is
  spent.

Standalone::

    PYTHONPATH=src python benchmarks/bench_kernel.py \
        --events 400000 --repeat 5 --out benchmarks/results/BENCH_kernel.json

Under pytest the same harness runs with a small event count as a smoke
test (structure + sanity only; timing assertions on a shared CI box would
be flaky).
"""

from __future__ import annotations

import heapq
import json
import pathlib
import time
from typing import Any, Callable, Optional

from repro.engine import Simulator

# --------------------------------------------------------------------------
# The "before" kernel: verbatim behaviour of the seed implementation
# (Event instances on the heap, compared via __lt__), trimmed to the
# pieces the benchmark exercises.
# --------------------------------------------------------------------------


class _LegacyEvent:
    __slots__ = ("time", "priority", "seq", "fn", "args", "_alive")

    def __init__(self, time, priority, seq, fn, args):
        self.time = time
        self.priority = priority
        self.seq = seq
        self.fn = fn
        self.args = args
        self._alive = True

    def __lt__(self, other):
        if self.time != other.time:
            return self.time < other.time
        if self.priority != other.priority:
            return self.priority < other.priority
        return self.seq < other.seq


class _LegacyQueue:
    __slots__ = ("_heap", "_seq", "_live")

    def __init__(self):
        self._heap: list[_LegacyEvent] = []
        self._seq = 0
        self._live = 0

    def __len__(self):
        return self._live

    def push(self, time, fn, args=(), priority=0):
        ev = _LegacyEvent(time, priority, self._seq, fn, args)
        self._seq += 1
        self._live += 1
        heapq.heappush(self._heap, ev)
        return ev

    def pop(self):
        heap = self._heap
        while heap:
            ev = heapq.heappop(heap)
            if ev._alive:
                ev._alive = False
                self._live -= 1
                return ev
        return None

    def peek_time(self):
        heap = self._heap
        while heap and not heap[0]._alive:
            heapq.heappop(heap)
        return heap[0].time if heap else None


class _LegacySimulator:
    """The seed run loop: peek_time + pop + attribute-heavy hot path."""

    __slots__ = ("_queue", "_now", "_event_count", "max_events")

    def __init__(self, max_events: int = 2_000_000_000):
        self._queue = _LegacyQueue()
        self._now = 0
        self._event_count = 0
        self.max_events = max_events

    @property
    def now(self):
        return self._now

    def schedule(self, time, fn, args=(), priority=0):
        return self._queue.push(time, fn, args, priority)

    def schedule_after(self, delay, fn, args=(), priority=0):
        return self._queue.push(self._now + delay, fn, args, priority)

    def schedule_many(self, items, priority=0):
        n = 0
        for time, fn, args in items:
            self._queue.push(time, fn, args, priority)
            n += 1
        return n

    def run(self, until: Optional[int] = None) -> None:
        queue = self._queue
        while True:
            next_t = queue.peek_time()
            if next_t is None:
                break
            if until is not None and next_t > until:
                self._now = until
                return
            ev = queue.pop()
            assert ev is not None
            self._now = ev.time
            self._event_count += 1
            if self._event_count > self.max_events:
                raise RuntimeError("max_events")
            ev.fn(*ev.args)


# --------------------------------------------------------------------------
# Workloads (identical code driven against either kernel)
# --------------------------------------------------------------------------


def workload_preload(sim, n: int) -> int:
    """Replayer shape: bulk-load the whole schedule, then drain."""
    hits = [0]

    def cb(i):
        hits[0] += 1

    # Deterministic non-monotonic times with heavy timestamp collisions —
    # the tie-break (priority, seq) does real work here.
    sim.schedule_many(((i * 7919) % (n // 8 + 1), cb, (i,))
                      for i in range(n))
    sim.run()
    assert hits[0] == n
    return n


def workload_churn(sim, n: int) -> int:
    """Execution-driven shape: 64 actors self-rescheduling until done."""
    actors = 64
    budget = [n]

    def tick(delay):
        budget[0] -= 1
        if budget[0] > 0:
            sim.schedule_after(delay, tick, (delay,))

    for a in range(actors):
        sim.schedule(a % 5, tick, (1 + a % 7,))
    sim.run()
    assert budget[0] <= 0
    return n


WORKLOADS: dict[str, Callable[[Any, int], int]] = {
    "preload": workload_preload,
    "churn": workload_churn,
}


def _events_per_sec(make_sim, workload, n: int, repeat: int) -> float:
    best = 0.0
    for _ in range(repeat):
        sim = make_sim()
        t0 = time.perf_counter()
        executed = workload(sim, n)
        dt = time.perf_counter() - t0
        best = max(best, executed / dt)
    return best


def run_bench(events: int, repeat: int) -> dict:
    report: dict = {"events": events, "repeat": repeat, "workloads": {}}
    speedups = []
    for name, workload in WORKLOADS.items():
        before = _events_per_sec(_LegacySimulator, workload, events, repeat)
        after = _events_per_sec(Simulator, workload, events, repeat)
        speedup = after / before
        speedups.append(speedup)
        report["workloads"][name] = {
            "before_events_per_sec": round(before),
            "after_events_per_sec": round(after),
            "speedup": round(speedup, 3),
        }
    geo = 1.0
    for s in speedups:
        geo *= s
    report["overall_speedup"] = round(geo ** (1 / len(speedups)), 3)
    return report


def write_report(report: dict, out: pathlib.Path) -> None:
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2) + "\n")


# ------------------------------------------------------------- pytest smoke
def test_kernel_fastpath_smoke(tmp_path):
    """Small-count smoke: both kernels run the workloads and the report has
    the right shape.  No timing assertion — CI boxes are too noisy; the
    committed BENCH_kernel.json records the real measurement."""
    report = run_bench(events=20_000, repeat=1)
    out = tmp_path / "BENCH_kernel.json"
    write_report(report, out)
    data = json.loads(out.read_text())
    assert set(data["workloads"]) == set(WORKLOADS)
    for row in data["workloads"].values():
        assert row["before_events_per_sec"] > 0
        assert row["after_events_per_sec"] > 0
    assert data["overall_speedup"] > 0


def main() -> int:
    from conftest import standalone_parser

    ap = standalone_parser(
        __doc__.splitlines()[0],
        events=(400_000, "events per workload per trial"),
        repeat=(5, "trials per kernel (best-of)"),
        out=(str(pathlib.Path(__file__).parent / "results"
                 / "BENCH_kernel.json"), None),
    )
    args = ap.parse_args()
    report = run_bench(args.events, args.repeat)
    write_report(report, pathlib.Path(args.out))
    print(json.dumps(report, indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
