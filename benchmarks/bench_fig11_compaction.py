"""Fig. 11 (extension) — trace compaction vs replay accuracy.

Applies the two leaf-safe compactions (drop leaf control messages; coalesce
leaf bursts) and measures the compression ratio against the accuracy cost of
a self-correcting replay of the compacted trace.  Expected shape: accuracy
essentially unchanged; compression modest (coherence traffic is
dependency-dense — an honest property of the format, recorded in
EXPERIMENTS.md).
"""

from __future__ import annotations

from conftest import save_and_print

from repro.core import (
    coalesce_leaves,
    compare_to_reference,
    filter_leaf_control,
    replay_trace,
)
from repro.harness import format_table, optical_factory, run_execution_driven

WORKLOAD = "radix"


def run(exp):
    _, trace, _ = run_execution_driven(exp, WORKLOAD, "electrical")
    _, ref_trace, _ = run_execution_driven(exp, WORKLOAD, "optical")
    factory = optical_factory(exp.onoc, exp.seed)

    variants = [("uncompacted", trace, None)]
    filt, fstats = filter_leaf_control(trace)
    variants.append(("filter_leaf_control", filt, fstats))
    for window in (16, 128):
        coal, cstats = coalesce_leaves(trace, window=window)
        variants.append((f"coalesce(w={window})", coal, cstats))

    rows = []
    for name, variant, stats in variants:
        rep = compare_to_reference(replay_trace(variant, factory), ref_trace)
        rows.append({
            "variant": name,
            "records": len(variant),
            "record_ratio": round(stats.record_ratio, 4) if stats else 1.0,
            "byte_ratio": round(stats.byte_ratio, 4) if stats else 1.0,
            "exec_err_%": round(rep.exec_time_error_pct, 2),
        })
    return rows


def test_fig11_compaction(benchmark, exp_cfg, results_dir):
    rows = benchmark.pedantic(run, args=(exp_cfg,), rounds=1, iterations=1)
    text = format_table(
        rows, title=f"Fig. 11: Trace compaction vs accuracy ({WORKLOAD})")
    save_and_print(results_dir, "fig11_compaction", text)

    base_err = rows[0]["exec_err_%"]
    for r in rows[1:]:
        assert r["record_ratio"] <= 1.0
        assert r["exec_err_%"] < base_err + 5.0, r["variant"]
