"""Fig. 13 (extension) — statistical robustness across seeds.

The accuracy result must not be a lucky seed: the full accuracy experiment
is repeated for several master seeds (different workload jitter, different
race timing) and summarised as mean ± max per mode.  Expected shape:
self-correction's error stays in the low single digits for every seed while
naive replay stays high for every seed — the gap is structural, not noise.
"""

from __future__ import annotations

import statistics

from conftest import save_and_print

from repro.harness import format_table, seed_accuracy_point

SEEDS = (7, 11, 23)
WORKLOADS = ("lu", "randshare")


def run(runner, exp):
    points = runner.map(seed_accuracy_point,
                        [(exp, wl, seed) for wl in WORKLOADS
                         for seed in SEEDS])
    by_workload = {}
    for r in points:
        by_workload.setdefault(r.workload, []).append(r)
    rows = []
    for wl in WORKLOADS:
        naive_errs = [r.naive.exec_time_error_pct for r in by_workload[wl]]
        sc_errs = [r.self_correcting.exec_time_error_pct
                   for r in by_workload[wl]]
        rows.append({
            "workload": wl,
            "seeds": len(SEEDS),
            "naive_mean_%": round(statistics.mean(naive_errs), 2),
            "naive_max_%": round(max(naive_errs), 2),
            "selfcorr_mean_%": round(statistics.mean(sc_errs), 2),
            "selfcorr_max_%": round(max(sc_errs), 2),
        })
    return rows


def test_fig13_seed_sensitivity(benchmark, exp_cfg, results_dir,
                                sweep_runner):
    rows = benchmark.pedantic(run, args=(sweep_runner, exp_cfg), rounds=1,
                              iterations=1)
    text = format_table(
        rows, title=f"Fig. 13: Accuracy across seeds {SEEDS}")
    save_and_print(results_dir, "fig13_seed_sensitivity", text)

    for r in rows:
        assert r["selfcorr_max_%"] < 8.0, r["workload"]
        assert r["selfcorr_mean_%"] < r["naive_mean_%"] / 4, r["workload"]
