"""Fig. 13 (extension) — statistical robustness across seeds.

The accuracy result must not be a lucky seed: the full accuracy experiment
is repeated for several master seeds (different workload jitter, different
race timing) and summarised as mean ± max per mode.  Expected shape:
self-correction's error stays in the low single digits for every seed while
naive replay stays high for every seed — the gap is structural, not noise.

Thin loader over ``benchmarks/experiments/fig13_seed_sensitivity.yaml``.
"""

from __future__ import annotations

from conftest import run_experiment_config, save_and_print

from repro.harness import format_table


def test_fig13_seed_sensitivity(benchmark, results_dir, sweep_runner):
    out = benchmark.pedantic(
        run_experiment_config,
        args=("fig13_seed_sensitivity.yaml", sweep_runner),
        rounds=1, iterations=1)
    seeds = tuple(out.resolved.parameters["seeds"])
    text = format_table(
        out.rows, title=f"Fig. 13: Accuracy across seeds {seeds}")
    save_and_print(results_dir, "fig13_seed_sensitivity", text)

    for r in out.rows:
        assert r["selfcorr_max_%"] < 8.0, r["workload"]
        assert r["selfcorr_mean_%"] < r["naive_mean_%"] / 4, r["workload"]
