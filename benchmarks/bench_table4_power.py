"""Table 4 — energy comparison for the case-study run.

Energy of each network over the application's execution.  Expected shape
(and a known, honestly-reported ONOC caveat): the optical crossbar's
*dynamic* energy per bit is competitive, but its *static* power (laser
sized for the worst-case loss path plus thermal ring tuning) dominates at
the modest utilisation of a 16-core coherence workload — the
energy-proportionality problem the later ONOC literature attacks.

Thin loader over ``benchmarks/experiments/table4_power.yaml``.
"""

from __future__ import annotations

from conftest import run_experiment_config, save_and_print

from repro.harness import format_table


def test_table4_power(benchmark, results_dir, sweep_runner):
    out = benchmark.pedantic(
        run_experiment_config,
        args=("table4_power.yaml", sweep_runner),
        rounds=1, iterations=1)
    text = format_table(out.rows,
                        title="Table 4: Energy, ONOC vs electrical NoC")
    save_and_print(results_dir, "table4_power", text)

    workloads = out.resolved.parameters["workloads"]
    for wl, (r_e, r_o) in zip(workloads, out.results):
        assert r_e.total_energy_uj > 0 and r_o.total_energy_uj > 0
        # the documented caveat: optical static power dominates at this scale
        assert r_o.static_energy_pj > r_o.total_dynamic_pj, wl
