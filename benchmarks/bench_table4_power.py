"""Table 4 — energy comparison for the case-study run.

Energy of each network over the application's execution.  Expected shape
(and a known, honestly-reported ONOC caveat): the optical crossbar's
*dynamic* energy per bit is competitive, but its *static* power (laser
sized for the worst-case loss path plus thermal ring tuning) dominates at
the modest utilisation of a 16-core coherence workload — the
energy-proportionality problem the later ONOC literature attacks.
"""

from __future__ import annotations

from conftest import save_and_print

from repro.harness import format_table, power_experiment

WORKLOADS = ("fft", "randshare")


def run_all(exp):
    return {wl: power_experiment(exp, wl) for wl in WORKLOADS}


def test_table4_power(benchmark, exp_cfg, results_dir):
    data = benchmark.pedantic(run_all, args=(exp_cfg,), rounds=1,
                              iterations=1)
    rows = []
    for wl, (r_e, r_o) in data.items():
        for rep in (r_e, r_o):
            row = {"workload": wl, **rep.as_row()}
            row["static_pct"] = round(
                100 * rep.static_energy_pj
                / (rep.static_energy_pj + rep.total_dynamic_pj), 1)
            rows.append(row)
    text = format_table(rows, title="Table 4: Energy, ONOC vs electrical NoC")
    save_and_print(results_dir, "table4_power", text)

    for wl, (r_e, r_o) in data.items():
        assert r_e.total_energy_uj > 0 and r_o.total_energy_uj > 0
        # the documented caveat: optical static power dominates at this scale
        assert r_o.static_energy_pj > r_o.total_dynamic_pj, wl
