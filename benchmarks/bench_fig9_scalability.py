"""Fig. 9 (extension) — scalability with core count.

Repeats the case study and the accuracy experiment at 16, 36 and 64 cores.
Expected shape: the ONOC's speedup holds or grows with the machine (the
electrical mesh's average hop count grows with sqrt(N), the crossbar's
latency does not), and self-correction accuracy does not degrade with scale.

Thin loader over ``benchmarks/experiments/fig9_scalability.yaml``; the
``--engine`` pytest flag flows in as a parameter override.
"""

from __future__ import annotations

from conftest import run_experiment_config, save_and_print

from repro.harness import format_table


def test_fig9_scalability(benchmark, results_dir, sweep_runner,
                          replay_engine):
    out = benchmark.pedantic(
        run_experiment_config,
        args=("fig9_scalability.yaml", sweep_runner),
        kwargs={"engine": replay_engine},
        rounds=1, iterations=1)
    rows = out.results
    workload = out.resolved.parameters["workload"]
    text = format_table(
        rows, title=f"Fig. 9: Scalability ({workload}, {replay_engine})")
    save_and_print(results_dir, "fig9_scalability", text)

    speedups = [r["speedup_x"] for r in rows]
    assert all(s > 1.0 for s in speedups)
    # The optical advantage must not collapse with scale.
    assert speedups[-1] > 0.8 * speedups[0]
    for r in rows:
        if "selfcorr_err_%" in r:
            assert r["selfcorr_err_%"] < 8.0, f"{r['cores']} cores"
