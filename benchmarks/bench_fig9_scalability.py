"""Fig. 9 (extension) — scalability with core count.

Repeats the case study and the accuracy experiment at 16, 36 and 64 cores.
Expected shape: the ONOC's speedup holds or grows with the machine (the
electrical mesh's average hop count grows with sqrt(N), the crossbar's
latency does not), and self-correction accuracy does not degrade with scale.
"""

from __future__ import annotations

from dataclasses import replace

from conftest import save_and_print

from repro.config import ExperimentConfig, NocConfig, OnocConfig, SystemConfig
from repro.harness import accuracy_experiment, case_study, format_table

CORE_COUNTS = (16, 36, 64)
WORKLOAD = "fft"


def scaled_exp(cores: int, seed: int) -> ExperimentConfig:
    side = int(round(cores ** 0.5))
    return ExperimentConfig(
        system=SystemConfig(num_cores=cores, num_mem_ctrls=max(1, cores // 4)),
        noc=NocConfig(width=side, height=side),
        onoc=OnocConfig(num_nodes=cores),
        seed=seed,
    )


def run_all(seed: int):
    rows = []
    for cores in CORE_COUNTS:
        exp = scaled_exp(cores, seed)
        cs = case_study(exp, WORKLOAD)
        entry = {
            "cores": cores,
            "exec_electrical": cs.exec_electrical,
            "exec_optical": cs.exec_optical,
            "speedup_x": round(cs.speedup, 3),
        }
        if cores <= 36:   # accuracy needs 4 extra runs; bound the wall clock
            acc = accuracy_experiment(exp, WORKLOAD)
            entry["naive_err_%"] = round(acc.naive.exec_time_error_pct, 2)
            entry["selfcorr_err_%"] = round(
                acc.self_correcting.exec_time_error_pct, 2)
        rows.append(entry)
    return rows


def test_fig9_scalability(benchmark, exp_cfg, results_dir):
    rows = benchmark.pedantic(run_all, args=(exp_cfg.seed,), rounds=1,
                              iterations=1)
    text = format_table(rows, title=f"Fig. 9: Scalability ({WORKLOAD})")
    save_and_print(results_dir, "fig9_scalability", text)

    speedups = [r["speedup_x"] for r in rows]
    assert all(s > 1.0 for s in speedups)
    # The optical advantage must not collapse with scale.
    assert speedups[-1] > 0.8 * speedups[0]
    for r in rows:
        if "selfcorr_err_%" in r:
            assert r["selfcorr_err_%"] < 8.0, f"{r['cores']} cores"
