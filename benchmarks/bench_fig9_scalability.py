"""Fig. 9 (extension) — scalability with core count.

Repeats the case study and the accuracy experiment at 16, 36 and 64 cores.
Expected shape: the ONOC's speedup holds or grows with the machine (the
electrical mesh's average hop count grows with sqrt(N), the crossbar's
latency does not), and self-correction accuracy does not degrade with scale.
"""

from __future__ import annotations

from conftest import save_and_print

from repro.harness import format_table, scalability_point, task

CORE_COUNTS = (16, 36, 64)
WORKLOAD = "fft"


def run_all(runner, seed: int, engine: str = "event"):
    # accuracy needs 4 extra runs per point; bound the wall clock at 64 cores
    return runner.run([
        task(scalability_point, cores, seed, WORKLOAD,
             with_accuracy=cores <= 36, engine=engine)
        for cores in CORE_COUNTS
    ])


def test_fig9_scalability(benchmark, exp_cfg, results_dir, sweep_runner,
                          replay_engine):
    rows = benchmark.pedantic(
        run_all, args=(sweep_runner, exp_cfg.seed, replay_engine),
        rounds=1, iterations=1)
    text = format_table(
        rows, title=f"Fig. 9: Scalability ({WORKLOAD}, {replay_engine})")
    save_and_print(results_dir, "fig9_scalability", text)

    speedups = [r["speedup_x"] for r in rows]
    assert all(s > 1.0 for s in speedups)
    # The optical advantage must not collapse with scale.
    assert speedups[-1] > 0.8 * speedups[0]
    for r in rows:
        if "selfcorr_err_%" in r:
            assert r["selfcorr_err_%"] < 8.0, f"{r['cores']} cores"
