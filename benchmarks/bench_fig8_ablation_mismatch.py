"""Fig. 8 (ablation) — accuracy vs capture/target network mismatch.

The ONOC's bandwidth is swept via its wavelength count (4 λ ... 256 λ),
making the target progressively faster than the electrical capture network.
Expected shape: the naive replay's error *grows* with the mismatch (its
timeline is the capture network's), while self-correction stays flat and
small — the property that makes the trace reusable across the design space.

Thin loader over ``benchmarks/experiments/fig8_ablation_mismatch.yaml``.
"""

from __future__ import annotations

from conftest import run_experiment_config, save_and_print

from repro.harness import format_table


def test_fig8_network_mismatch(benchmark, results_dir, sweep_runner):
    out = benchmark.pedantic(
        run_experiment_config,
        args=("fig8_ablation_mismatch.yaml", sweep_runner),
        rounds=1, iterations=1)
    workload = out.resolved.parameters["workload"]
    text = format_table(
        out.rows,
        title=f"Fig. 8: Accuracy vs target-network mismatch ({workload})")
    save_and_print(results_dir, "fig8_ablation_mismatch", text)

    for wl, naive_rep, sc_rep in out.results[0]:
        assert sc_rep.exec_time_error_pct <= naive_rep.exec_time_error_pct + 1.5, f"{wl} λ"
        if wl >= 64:
            # Faster-than-capture targets (the paper's direction): precise.
            assert sc_rep.exec_time_error_pct < 8.0, f"{wl} λ"
        else:
            # Much slower targets resolve protocol races differently, so the
            # captured dependency graph over-constrains the replay; the
            # model degrades gracefully rather than failing (documented in
            # EXPERIMENTS.md).
            assert sc_rep.exec_time_error_pct < 20.0, f"{wl} λ"
