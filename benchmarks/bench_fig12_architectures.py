"""Fig. 12 (extension) — one trace, four optical architectures.

The design-space-exploration payoff: a single electrically-captured trace is
replayed (self-correcting) against all four optical data planes — MWSR
crossbar, SWMR crossbar, passive AWGR, circuit-switched mesh — and each
prediction is cross-checked against its own execution-driven reference.
Expected shape: the replay ranks the architectures the same way the
execution-driven runs do, with single-digit errors across all four.
"""

from __future__ import annotations

from dataclasses import replace

from conftest import save_and_print

from repro.config import TraceConfig
from repro.core import compare_to_reference, replay_trace
from repro.harness import format_table, optical_factory, run_execution_driven

ARCHITECTURES = ("crossbar", "swmr_crossbar", "awgr", "circuit_mesh")
WORKLOAD = "radix"


def run(exp):
    _, trace, _ = run_execution_driven(exp, WORKLOAD, "electrical")
    rows = []
    for arch in ARCHITECTURES:
        exp_v = replace(exp, onoc=replace(exp.onoc, topology=arch))
        ref_res, ref_trace, _ = run_execution_driven(exp_v, WORKLOAD,
                                                     "optical")
        result = replay_trace(trace, optical_factory(exp_v.onoc, exp.seed),
                              TraceConfig(mode="self_correcting"))
        rep = compare_to_reference(result, ref_trace)
        rows.append({
            "architecture": arch,
            "reference_exec": ref_res.exec_time_cycles,
            "predicted_exec": result.exec_time_estimate,
            "error_%": round(rep.exec_time_error_pct, 2),
            "replay_s": round(result.wall_clock_s, 3),
        })
    return rows


def test_fig12_architecture_sweep(benchmark, exp_cfg, results_dir):
    rows = benchmark.pedantic(run, args=(exp_cfg,), rounds=1, iterations=1)
    text = format_table(
        rows,
        title=f"Fig. 12: One trace vs four optical architectures ({WORKLOAD})")
    save_and_print(results_dir, "fig12_architectures", text)

    for r in rows:
        assert r["error_%"] < 8.0, r["architecture"]
    # The replay must rank the architectures like the references do.
    by_ref = sorted(rows, key=lambda r: r["reference_exec"])
    by_pred = sorted(rows, key=lambda r: r["predicted_exec"])
    assert [r["architecture"] for r in by_ref] == \
        [r["architecture"] for r in by_pred]
