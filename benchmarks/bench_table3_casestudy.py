"""Table 3 — case study: application performance, ONOC vs electrical NoC.

The paper's demonstration run: a real application executed through the full
system on both interconnects.  The paper used a single case study; we sweep
all six kernels.  Expected shape: the optical crossbar wins on every
workload, most on communication-bound all-to-all/hotspot patterns (fft, lu)
and least on nearest-neighbour traffic (stencil).

Thin loader over ``benchmarks/experiments/table3_case_study.yaml``.
"""

from __future__ import annotations

from conftest import run_experiment_config, save_and_print

from repro.harness import format_table


def test_table3_case_study(benchmark, results_dir, sweep_runner):
    out = benchmark.pedantic(
        run_experiment_config,
        args=("table3_case_study.yaml", sweep_runner),
        rounds=1, iterations=1)
    text = format_table(out.rows,
                        title="Table 3: Case study, ONOC vs baseline NoC")
    save_and_print(results_dir, "table3_casestudy", text)

    for r in out.results:
        assert r.speedup > 1.0, f"{r.workload}: ONOC should win"
        assert r.avg_latency_optical < r.avg_latency_electrical, r.workload
