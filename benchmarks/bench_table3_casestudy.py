"""Table 3 — case study: application performance, ONOC vs electrical NoC.

The paper's demonstration run: a real application executed through the full
system on both interconnects.  The paper used a single case study; we sweep
all six kernels.  Expected shape: the optical crossbar wins on every
workload, most on communication-bound all-to-all/hotspot patterns (fft, lu)
and least on nearest-neighbour traffic (stencil).
"""

from __future__ import annotations

from conftest import ALL_WORKLOADS, save_and_print

from repro.harness import case_study, format_table


def run_all(exp):
    return [case_study(exp, wl) for wl in ALL_WORKLOADS]


def test_table3_case_study(benchmark, exp_cfg, results_dir):
    rows_raw = benchmark.pedantic(run_all, args=(exp_cfg,), rounds=1,
                                  iterations=1)
    rows = [{
        "workload": r.workload,
        "exec_electrical": r.exec_electrical,
        "exec_optical": r.exec_optical,
        "speedup_x": round(r.speedup, 3),
        "lat_elec": round(r.avg_latency_electrical, 1),
        "lat_opt": round(r.avg_latency_optical, 1),
        "lat_reduction_%": round(r.latency_reduction_pct, 1),
    } for r in rows_raw]
    text = format_table(rows, title="Table 3: Case study, ONOC vs baseline NoC")
    save_and_print(results_dir, "table3_casestudy", text)

    for r in rows_raw:
        assert r.speedup > 1.0, f"{r.workload}: ONOC should win"
        assert r.avg_latency_optical < r.avg_latency_electrical, r.workload
