"""Fig. 6 — convergence of offline iterative self-correction.

The fixed-point variant of the model: replay a fixed schedule, rebuild the
timeline from measured latencies, repeat.  Expected shape: the estimate
moves from the naive (capture-network) timeline toward the execution-driven
ONOC time within a handful of passes, then flattens; the online model's
single pass remains the accuracy reference.
"""

from __future__ import annotations

from conftest import save_and_print

from repro.harness import convergence_experiment, format_table

WORKLOADS = ("lu", "radix", "randshare")


def run_all(exp):
    out = {}
    for wl in WORKLOADS:
        history, ref = convergence_experiment(exp, wl, max_iterations=8)
        out[wl] = (history, ref)
    return out


def test_fig6_convergence(benchmark, exp_cfg, results_dir):
    data = benchmark.pedantic(run_all, args=(exp_cfg,), rounds=1,
                              iterations=1)
    rows = []
    for wl, (history, ref) in data.items():
        for h in history:
            rows.append({
                "workload": wl,
                "iteration": h.iteration,
                "estimate": h.exec_time_estimate,
                "ref_exec": ref,
                "err_%": round(abs(h.exec_time_estimate - ref) / ref * 100, 2),
            })
    text = format_table(
        rows, title="Fig. 6: Iterative self-correction convergence")
    save_and_print(results_dir, "fig6_convergence", text)

    for wl, (history, ref) in data.items():
        first = abs(history[0].exec_time_estimate - ref) / ref
        last = abs(history[-1].exec_time_estimate - ref) / ref
        assert last < first, f"{wl}: iteration did not reduce error"
        assert len(history) <= 8
