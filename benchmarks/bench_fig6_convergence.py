"""Fig. 6 — convergence of offline iterative self-correction.

The fixed-point variant of the model: replay a fixed schedule, rebuild the
timeline from measured latencies, repeat.  Expected shape: the estimate
moves from the naive (capture-network) timeline toward the execution-driven
ONOC time within a handful of passes, then flattens; the online model's
single pass remains the accuracy reference.

Thin loader over ``benchmarks/experiments/fig6_convergence.yaml``.
"""

from __future__ import annotations

from conftest import run_experiment_config, save_and_print

from repro.harness import format_table


def test_fig6_convergence(benchmark, results_dir, sweep_runner):
    out = benchmark.pedantic(run_experiment_config,
                             args=("fig6_convergence.yaml", sweep_runner),
                             rounds=1, iterations=1)
    text = format_table(
        out.rows, title="Fig. 6: Iterative self-correction convergence")
    save_and_print(results_dir, "fig6_convergence", text)

    workloads = out.resolved.parameters["workloads"]
    max_iterations = out.resolved.parameters["max_iterations"]
    for wl, (history, ref) in zip(workloads, out.results):
        first = abs(history[0].exec_time_estimate - ref) / ref
        last = abs(history[-1].exec_time_estimate - ref) / ref
        assert last < first, f"{wl}: iteration did not reduce error"
        assert len(history) <= max_iterations
