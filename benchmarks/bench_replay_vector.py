"""Generational vectorized replay vs the event-driven path, plus the
out-of-core memory profile of the binary trace format.

Two measurements gate ROADMAP item 2 ("an order of magnitude on replay"):

* **throughput** — self-correcting replay of one large synthetic trace on
  the 16-node optical crossbar, event engine vs generational engine, in
  messages per second of replay wall clock.  The trace is built
  analytically (request/response chains across the node set with
  capture-consistent gaps and latencies) so the bench needs no slow
  full-system capture run to reach 100k+ messages.
* **peak RSS vs trace size** — ``stream_naive_summary`` over the chunked
  binary format in a fresh subprocess per size, ``ru_maxrss`` sampled at
  exit, against fully loading the same trace in memory.  The streaming
  path must grow sublinearly in trace size (it holds one 64k-record chunk
  plus O(resources) carry state).

Standalone::

    PYTHONPATH=src python benchmarks/bench_replay_vector.py \
        --messages 120000 \
        --out benchmarks/results/BENCH_replay_vector.json

Under pytest the same harness runs with a small trace as the CI
perf-smoke: it asserts structure and that the generational engine is not
slower than the event engine (a hard regression gate; the checked-in JSON
records the full-size ratio).
"""

from __future__ import annotations

import json
import pathlib
import random
import subprocess
import sys
import tempfile
import time

from repro.config import OnocConfig, TraceConfig, TRACE_SELF_CORRECTING
from repro.core import Trace, replay_trace, tracebin
from repro.core.trace import EndMarker, TraceRecord
from repro.harness.builders import optical_factory

NODES = 16
#: Concurrent request/response conversations (32 outstanding per node) —
#: the message-level parallelism a 100k+-message full-system capture of a
#: parallel app exhibits, and what the generational engine vectorizes over.
CHAINS = 512
SEED = 20260808


# --------------------------------------------------------------------------
# Synthetic capture-consistent trace
# --------------------------------------------------------------------------

def synth_trace(n_messages: int, nodes: int = NODES, chains: int = CHAINS,
                seed: int = SEED) -> Trace:
    """A valid dependency-annotated trace of ``n_messages`` records.

    ``chains`` ping-pong request/response conversations run across random
    node pairs; each message is caused by the delivery of the previous one
    in its chain, with a random compute gap, and occasionally fans out an
    extra child — the DAG shape (mostly chains, some fan-out, contention
    at shared destinations) that real captures show.  All the capture
    invariants hold by construction (``Trace.validate`` runs at the end).
    """
    rng = random.Random(seed)
    base_lat = 24
    chain_state = []
    for c in range(chains):
        a = rng.randrange(nodes)
        b = (a + rng.randrange(1, nodes)) % nodes
        chain_state.append({"pair": (a, b), "flip": False,
                            "last": None, "t": rng.randrange(0, 200)})
    raw = []          # (src, dst, size, kind, t_inject, t_deliver,
    #                    cause_pos, gap) — cause by list position, remapped
    #                    to msg_ids after the canonical sort.
    while len(raw) < n_messages:
        c = chain_state[len(raw) % chains]
        a, b = c["pair"]
        src, dst = (b, a) if c["flip"] else (a, b)
        c["flip"] = not c["flip"]
        size = 64 if rng.random() < 0.7 else 512
        lat = base_lat + size // 16
        if c["last"] is None:
            t_inject = c["t"]
            cause_pos, gap = -1, t_inject
        else:
            cause_pos, cause_deliver = c["last"]
            gap = rng.randrange(1, 40)
            t_inject = cause_deliver + gap
        t_deliver = t_inject + lat
        raw.append((src, dst, size, "data", t_inject, t_deliver,
                    cause_pos, gap))
        c["last"] = (len(raw) - 1, t_deliver)
        # Occasional fan-out: a control child of this message to a third
        # node, not continuing the chain.
        if len(raw) < n_messages and rng.random() < 0.15:
            third = rng.randrange(nodes)
            if third != dst:
                g2 = rng.randrange(1, 20)
                ti = t_deliver + g2
                raw.append((dst, third, 64, "ctrl", ti, ti + base_lat + 4,
                            len(raw) - 1, g2))

    order = sorted(range(len(raw)), key=lambda i: (raw[i][4], i))
    remap = {pos: mid for mid, pos in enumerate(order)}
    remap[-1] = -1
    occurrence: dict[tuple, int] = {}
    records = []
    for mid, pos in enumerate(order):
        src, dst, size, kind, t_inject, t_deliver, cause_pos, gap = raw[pos]
        base = (src, dst, kind, pos)
        occ = occurrence.get(base, 0)
        occurrence[base] = occ + 1
        records.append(TraceRecord(
            msg_id=mid, key=(src, dst, kind, pos, occ),
            src=src, dst=dst, size_bytes=size, kind=kind,
            t_inject=t_inject, t_deliver=t_deliver,
            cause_id=remap[cause_pos], gap=gap))
    last_in: dict[int, TraceRecord] = {}
    for r in records:
        prev = last_in.get(r.dst)
        if prev is None or r.t_deliver > prev.t_deliver:
            last_in[r.dst] = r
    markers = []
    for node in range(nodes):
        r = last_in.get(node)
        if r is None:
            markers.append(EndMarker(node, 0, -1, 0))
        else:
            markers.append(EndMarker(node, r.t_deliver + 10, r.msg_id, 10))
    trace = Trace(records=records, end_markers=markers,
                  exec_time=max(m.t_finish for m in markers),
                  meta={"synthetic": "bench_replay_vector",
                        "num_cores": nodes, "seed": seed})
    trace.validate()
    return trace


# --------------------------------------------------------------------------
# Throughput
# --------------------------------------------------------------------------

def measure_throughput(trace: Trace, repeat: int = 3) -> dict:
    onoc = OnocConfig(num_nodes=NODES)
    out: dict = {"trace_messages": len(trace)}
    for engine in ("event", "generational"):
        cfg = TraceConfig(mode=TRACE_SELF_CORRECTING, engine=engine)
        best = None
        extra: dict = {}
        for _ in range(repeat):
            t0 = time.perf_counter()
            result = replay_trace(trace, optical_factory(onoc, 1), cfg)
            wall = time.perf_counter() - t0
            if best is None or wall < best:
                best = wall
                extra = dict(result.extra)
        assert best is not None
        out[engine] = {
            "wall_s": round(best, 4),
            "msgs_per_s": round(len(trace) / best),
            **({"iterations": extra.get("iterations"),
                "converged": extra.get("converged")}
               if engine == "generational" else {}),
        }
    out["speedup_x"] = round(
        out["event"]["wall_s"] / out["generational"]["wall_s"], 2)
    return out


# --------------------------------------------------------------------------
# Peak RSS vs trace size (fresh subprocess per point)
# --------------------------------------------------------------------------

_RSS_CHILD = r"""
import json, re, resource, sys
from repro.config import OnocConfig


def peak_rss_kib():
    # /proc VmHWM is reset at exec so it measures *this* process only;
    # ru_maxrss survives fork+exec and would report the parent's peak
    # (which holds the full bench trace) for every child.  Fall back to
    # ru_maxrss where /proc is unavailable.
    try:
        with open("/proc/self/status") as f:
            return int(re.search(r"VmHWM:\s+(\d+) kB", f.read()).group(1))
    except (OSError, AttributeError):
        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss


mode, path = sys.argv[1], sys.argv[2]
if mode == "stream":
    from repro.core import stream_naive_summary
    summary = stream_naive_summary(path, OnocConfig(num_nodes=%(nodes)d))
    n = summary["messages"]
else:
    from repro.core import load_trace, replay_trace
    from repro.config import TraceConfig
    from repro.harness.builders import optical_factory
    trace = load_trace(path)
    res = replay_trace(trace, optical_factory(
        OnocConfig(num_nodes=%(nodes)d), 1),
        TraceConfig(mode="naive", engine="generational"))
    n = res.messages_replayed
print(json.dumps({"messages": n, "rss_kib": peak_rss_kib()}))
"""


def _child_rss(mode: str, path: pathlib.Path) -> dict:
    proc = subprocess.run(
        [sys.executable, "-c", _RSS_CHILD % {"nodes": NODES},
         mode, str(path)],
        capture_output=True, text=True, check=True,
        env={"PYTHONPATH": str(pathlib.Path(__file__).parent.parent / "src"),
             "PATH": "/usr/bin:/bin"})
    return json.loads(proc.stdout)


def measure_rss_curve(sizes: list[int]) -> list[dict]:
    rows = []
    with tempfile.TemporaryDirectory() as tmp:
        for n in sizes:
            trace = synth_trace(n)
            path = pathlib.Path(tmp) / f"t{n}.rtrc"
            tracebin.write_file(trace, path)
            stream = _child_rss("stream", path)
            full = _child_rss("full", path)
            rows.append({
                "messages": len(trace),
                "file_bytes": path.stat().st_size,
                "stream_rss_kib": stream["rss_kib"],
                "full_replay_rss_kib": full["rss_kib"],
            })
    return rows


def run(messages: int, repeat: int, rss_sizes: list[int]) -> dict:
    trace = synth_trace(messages)
    report = measure_throughput(trace, repeat=repeat)
    report["rss_curve"] = measure_rss_curve(rss_sizes)
    first, last = report["rss_curve"][0], report["rss_curve"][-1]
    report["rss_growth_x"] = round(
        last["stream_rss_kib"] / first["stream_rss_kib"], 3)
    report["trace_growth_x"] = round(
        last["file_bytes"] / first["file_bytes"], 3)
    return report


# ------------------------------------------------------------------ pytest

def test_replay_vector_smoke(results_dir):
    """CI perf-smoke: small trace, generational must not be slower."""
    report = run(messages=8000, repeat=2, rss_sizes=[4000, 16000])
    (results_dir / "replay_vector_smoke.json").write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n")
    assert report["generational"]["converged"]
    assert report["event"]["msgs_per_s"] > 0
    # Regression gate: the vectorized engine must beat the event engine
    # even at smoke scale (at full scale the checked-in ratio is >= 5x).
    assert report["speedup_x"] >= 1.0, report
    # Streaming RSS must grow far slower than the trace itself.
    assert report["rss_growth_x"] < report["trace_growth_x"], report


# -------------------------------------------------------------- standalone

def main() -> int:
    from conftest import standalone_parser, write_json_report

    ap = standalone_parser(
        __doc__,
        messages=120_000,
        repeat=3,
        rss_sizes="25000,50000,100000,200000",
        quick=(False, "small trace, one repeat (the CI smoke shape)"),
    )
    args = ap.parse_args()
    if args.quick:
        args.messages = 8000
        args.repeat = 1
        args.rss_sizes = "4000,16000"
    sizes = [int(s) for s in args.rss_sizes.split(",")]
    report = run(args.messages, args.repeat, sizes)
    write_json_report(report, args.out)
    ok = report["speedup_x"] >= (1.0 if args.quick else 5.0)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
