"""Instrumentation overhead: events/sec with obs disabled vs enabled.

The ``repro.obs`` contract is *zero cost when disabled*: a simulator with
no probe attached runs the exact same hoisted loop it ran before the
instrumentation layer existed (one ``is not None`` check per ``run()``
call, not per event).  This benchmark pins that claim with numbers:

* ``disabled``  — plain :class:`repro.engine.Simulator`, no probe.
* ``enabled``   — the same workloads with a registry-backed
  :class:`repro.obs.KernelProbe` attached (the instrumented run loop).

The interesting figure is ``disabled_vs_baseline`` staying ~1.0 (the
driver-level acceptance gate is <2% regression vs ``BENCH_kernel.json``);
``enabled_overhead_pct`` documents the opt-in price of kernel metrics.

Standalone::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py \
        --events 400000 --repeat 5 --out benchmarks/results/BENCH_obs.json

Under pytest this runs with a small event count as a structural smoke
test only — timing assertions on shared CI boxes would be flaky.
"""

from __future__ import annotations

import pathlib
import sys
import time

from repro import obs
from repro.engine import Simulator

if __package__ in (None, ""):
    # Standalone `python benchmarks/bench_obs_overhead.py` puts benchmarks/
    # itself on sys.path; the namespace package needs the repo root there.
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

from benchmarks.bench_kernel import WORKLOADS


def _events_per_sec(make_sim, workload, n: int, repeat: int) -> float:
    best = 0.0
    for _ in range(repeat):
        sim = make_sim()
        t0 = time.perf_counter()
        executed = workload(sim, n)
        dt = time.perf_counter() - t0
        best = max(best, executed / dt)
    return best


def _instrumented_sim() -> Simulator:
    sim = Simulator()
    sim.attach_probe(obs.KernelProbe(obs.metrics("kernel")))
    return sim


def run_bench(events: int, repeat: int) -> dict:
    report: dict = {"events": events, "repeat": repeat, "workloads": {}}
    for name, workload in WORKLOADS.items():
        disabled = _events_per_sec(Simulator, workload, events, repeat)
        with obs.collecting():
            enabled = _events_per_sec(_instrumented_sim, workload, events, repeat)
        report["workloads"][name] = {
            "disabled_events_per_sec": round(disabled),
            "enabled_events_per_sec": round(enabled),
            "enabled_overhead_pct": round((disabled / enabled - 1) * 100, 2),
        }
    return report


# --------------------------------------------------------------------------
# Pytest smoke: structure + semantics, no timing assertions.
# --------------------------------------------------------------------------


def test_disabled_path_is_uninstrumented():
    """Without a probe the simulator keeps the PR-1 fast loop (probe check
    happens once per run(), never per event)."""
    sim = Simulator()
    assert sim.probe is None
    assert obs.attach_kernel_probe(sim) is None      # obs off -> no-op
    assert sim.probe is None


def test_enabled_and_disabled_agree_on_semantics():
    """The instrumented loop fires the same events in the same order."""
    for name, workload in WORKLOADS.items():
        plain = Simulator()
        workload(plain, 5000)
        with obs.collecting() as reg:
            probed = _instrumented_sim()
            workload(probed, 5000)
        assert probed.now == plain.now, name
        assert probed.event_count == plain.event_count, name
        snap = reg.snapshot()
        assert snap["kernel.events_fired"]["value"] == plain.event_count
        assert snap["kernel.heap_high_water"]["value"] > 0


def test_bench_smoke():
    report = run_bench(events=2000, repeat=1)
    for name in WORKLOADS:
        entry = report["workloads"][name]
        assert entry["disabled_events_per_sec"] > 0
        assert entry["enabled_events_per_sec"] > 0


def main() -> None:
    from conftest import standalone_parser, write_json_report

    ap = standalone_parser(__doc__, events=400_000, repeat=5)
    args = ap.parse_args()
    report = run_bench(args.events, args.repeat)
    write_json_report(report, args.out, sort_keys=False)


if __name__ == "__main__":
    main()
