"""Fig. 7 (ablation) — accuracy vs dependency-annotation completeness.

Sweeps the fraction of dependency edges kept in the trace, once per
degraded-gap policy:

* ``captured`` — dropped records fall back to their captured absolute
  timestamps, re-anchoring the schedule to the capture network (the
  historical cliff: even keep=0.75 collapses to naive-replay error);
* ``neighbor_gap`` — dropped records re-derive their injection from the
  same-node predecessor's replayed time plus the captured inter-send delta,
  so error grows gradually toward the naive endpoint at keep=0.

Expected shape: under both policies keep=0 approaches the naive replay's
error (neighbor_gap reaches it *exactly* — the anchor chain telescopes to
the captured schedule), and full annotations beat none — demonstrating that
the dependency annotations are what buys the precision, and the neighbor
re-derivation is what keeps partial annotations usable.

Thin loader over ``benchmarks/experiments/fig7_ablation_deps.yaml``.
"""

from __future__ import annotations

from conftest import run_experiment_config, save_and_print

from repro.harness import format_table


def test_fig7_dependency_ablation(benchmark, results_dir, sweep_runner):
    out = benchmark.pedantic(run_experiment_config,
                             args=("fig7_ablation_deps.yaml", sweep_runner),
                             rounds=1, iterations=1)
    workload = out.resolved.parameters["workload"]
    policies = out.resolved.parameters["policies"]
    by_policy = dict(zip(policies, out.results))
    text = format_table(
        out.rows,
        title=f"Fig. 7: Accuracy vs dependency completeness ({workload}), "
              "by degraded-gap policy")
    save_and_print(results_dir, "fig7_ablation_deps", text)

    for policy in policies:
        errs = {frac: rep.exec_time_error_pct
                for frac, rep in by_policy[policy]}
        assert errs[1.0] < errs[0.0], \
            f"{policy}: full annotations must beat none"
        assert errs[1.0] < 5.0
    # The graceful-degradation claim: at 75% annotations the neighbor policy
    # must stay far below the captured policy's re-anchoring collapse.
    cap = {f: r.exec_time_error_pct for f, r in by_policy["captured"]}
    ngb = {f: r.exec_time_error_pct for f, r in by_policy["neighbor_gap"]}
    assert ngb[0.75] < cap[0.75] / 2, \
        f"neighbor_gap {ngb[0.75]:.1f}% should halve captured {cap[0.75]:.1f}%"
