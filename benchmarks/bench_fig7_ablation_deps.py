"""Fig. 7 (ablation) — accuracy vs dependency-annotation completeness.

Sweeps the fraction of dependency edges kept in the trace; dropped records
fall back to their captured absolute timestamps (naive behaviour).  Expected
shape: error rises monotonically-ish as annotations are removed, with
keep=0 approaching the naive replay's error — demonstrating that the
dependency annotations *are* what buys the precision.
"""

from __future__ import annotations

from conftest import save_and_print

from repro.harness import ablation_dep_fraction, format_table

FRACTIONS = (1.0, 0.75, 0.5, 0.25, 0.0)
WORKLOAD = "randshare"


def run(exp):
    return ablation_dep_fraction(exp, WORKLOAD, FRACTIONS)


def test_fig7_dependency_ablation(benchmark, exp_cfg, results_dir):
    rows_raw = benchmark.pedantic(run, args=(exp_cfg,), rounds=1, iterations=1)
    rows = [{
        "kept_deps": frac,
        "exec_err_%": round(rep.exec_time_error_pct, 2),
        "mean_lat_err_%": round(rep.mean_latency_error_pct, 2),
    } for frac, rep in rows_raw]
    text = format_table(
        rows,
        title=f"Fig. 7: Accuracy vs dependency completeness ({WORKLOAD})")
    save_and_print(results_dir, "fig7_ablation_deps", text)

    errs = {frac: rep.exec_time_error_pct for frac, rep in rows_raw}
    assert errs[1.0] < errs[0.0], "full annotations must beat none"
    assert errs[1.0] < 5.0
