"""Table 5 (extension) — area comparison across all interconnects.

Coarse DSENT-class area of the electrical baseline and every optical
architecture.  Expected shape: the MWSR crossbar's N²λ modulator rings make
it the area hog; the passive AWGR is the leanest optical option; the
electrical mesh is small at 16 nodes but its buffers grow with VC resources.

Thin loader over ``benchmarks/experiments/table5_area.yaml`` (the area
arithmetic itself lives in :func:`repro.harness.experiments.area_rows`).
"""

from __future__ import annotations

from conftest import run_experiment_config, save_and_print

from repro.harness import format_table


def test_table5_area(benchmark, results_dir, sweep_runner):
    out = benchmark.pedantic(
        run_experiment_config,
        args=("table5_area.yaml", sweep_runner),
        rounds=1, iterations=1)
    rows = out.rows
    text = format_table(rows, title="Table 5: Area (mm^2)")
    save_and_print(results_dir, "table5_area", text)

    by_name = {r["network"]: r["total_mm2"] for r in rows}
    mwsr = by_name["optical_crossbar_16n"]
    swmr = by_name["optical_swmr_crossbar_16n"]
    awgr = by_name["optical_awgr_16n"]
    # The two N^2-ring crossbars dominate; the passive AWGR is leanest.
    assert awgr < mwsr and awgr < swmr
    assert all(v > 0 for v in by_name.values())
