"""Table 5 (extension) — area comparison across all interconnects.

Coarse DSENT-class area of the electrical baseline and every optical
architecture.  Expected shape: the MWSR crossbar's N²λ modulator rings make
it the area hog; the passive AWGR is the leanest optical option; the
electrical mesh is small at 16 nodes but its buffers grow with VC resources.
"""

from __future__ import annotations

from dataclasses import replace

from conftest import save_and_print

from repro.harness import format_table
from repro.onoc import (
    awgr_ring_census,
    crossbar_ring_census,
    mesh_ring_census,
)
from repro.onoc.swmr import swmr_ring_census
from repro.power import electrical_area, optical_area


def _flat(report, rings_count=""):
    detail = ", ".join(f"{k} {v:.3f}" for k, v in report.components.items())
    return {"network": report.name, "rings": rings_count,
            "breakdown_mm2": detail,
            "total_mm2": round(report.total_mm2, 3)}


def run(exp):
    o = exp.onoc
    rows = [_flat(electrical_area(exp.noc))]
    for topology, census in (
        ("crossbar", crossbar_ring_census(o.num_nodes, o.num_wavelengths)),
        ("swmr_crossbar", swmr_ring_census(o.num_nodes, o.num_wavelengths)),
        ("awgr", awgr_ring_census(o.num_nodes, o.num_wavelengths)),
        ("circuit_mesh", mesh_ring_census(o.num_nodes, o.num_wavelengths)),
    ):
        cfg = replace(o, topology=topology)
        rows.append(_flat(optical_area(cfg, census), census.total))
    return rows


def test_table5_area(benchmark, exp_cfg, results_dir):
    rows = benchmark.pedantic(run, args=(exp_cfg,), rounds=1, iterations=1)
    text = format_table(rows, title="Table 5: Area (mm^2)")
    save_and_print(results_dir, "table5_area", text)

    by_name = {r["network"]: r["total_mm2"] for r in rows}
    mwsr = by_name["optical_crossbar_16n"]
    swmr = by_name["optical_swmr_crossbar_16n"]
    awgr = by_name["optical_awgr_16n"]
    # The two N^2-ring crossbars dominate; the passive AWGR is leanest.
    assert awgr < mwsr and awgr < swmr
    assert all(v > 0 for v in by_name.values())
