"""Fault matrix — exec-error vs trace-fault severity, per fault family.

Runs the ``fault_matrix`` experiment family through the declarative
:mod:`repro.exp` layer (the same compile/postprocess path the CI
bench-regression gate drives via ``benchmarks/experiments/smoke/
fault_matrix.yaml``), at the full severity grid of
``benchmarks/experiments/base/fault_matrix.yaml``: the reference mismatch
pair (fft, 16 cores, awgr-captured trace replayed on crossbar) under the
default ``neighbor_gap`` degraded-gap policy.  It pins the graceful-
degradation claim: every family's error-vs-severity curve is *smooth*
(bounded slope between adjacent severities — no re-anchoring cliff, the
``breaches`` column), and the pristine anchor keeps the paper's precision.

The rendered curves are saved to ``benchmarks/results/fault_matrix.txt`` so
the measured degradation behaviour is checked in alongside the other figure
artifacts.
"""

from __future__ import annotations

from conftest import EXPERIMENTS_DIR, save_and_print

from repro.exp import resolve_config, run_experiment
from repro.harness import SweepRunner


def run():
    cfg = resolve_config(EXPERIMENTS_DIR / "base" / "fault_matrix.yaml")
    return run_experiment(cfg, SweepRunner())


def test_fault_matrix_smooth(benchmark, results_dir):
    out = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Fault matrix: sc exec error vs severity "
             "(fft-16, awgr -> crossbar, neighbor_gap policy)"]
    by_family: dict[str, list[dict]] = {}
    for row in out.rows:
        by_family.setdefault(row["family"], []).append(row)
    for fam, rows in sorted(by_family.items()):
        curve = ", ".join(f"{r['severity']:g}:{r['sc_err_%']:.1f}%"
                          for r in rows)
        status = "ok  " if not any(r["breaches"] for r in rows) else "FAIL"
        lines.append(f"  {status} {fam}: {curve}")
    save_and_print(results_dir, "fault_matrix", "\n".join(lines) + "\n")

    # Smooth degradation: no family may concentrate the pristine-to-naive
    # error range in one severity step (the captured-policy cliff does, at
    # ~2x the allowed slope, and is pinned as failing in the test-suite).
    for row in out.rows:
        fam = row["family"]
        assert row["breaches"] == 0, (fam, row)
        # Shared pristine anchor keeps the paper's precision.
        if row["severity"] == 0.0:
            assert row["sc_err_%"] < 5.0, (fam, row)
        # Nothing stalls under the neighbor policy, whatever the damage.
        assert row["unreplayed"] == 0, (fam, row)
