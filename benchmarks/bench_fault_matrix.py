"""Fault matrix — exec-error vs trace-fault severity, per fault family.

Runs :func:`repro.validate.run_fault_matrix` on the reference mismatch pair
(fft, 16 cores, awgr-captured trace replayed on crossbar) under the default
``neighbor_gap`` degraded-gap policy, and pins the graceful-degradation
claim: every family's error-vs-severity curve is *smooth* (bounded slope
between adjacent severities — no re-anchoring cliff), and the pristine
anchor point keeps the paper's precision.

The rendered curves are saved to ``benchmarks/results/fault_matrix.txt`` so
the measured degradation behaviour is checked in alongside the other figure
artifacts.
"""

from __future__ import annotations

from conftest import save_and_print

from repro.validate import Scenario, run_fault_matrix


def run():
    base = Scenario("fft", 16, 16, 0.1, "awgr", "crossbar")
    return run_fault_matrix(base)


def test_fault_matrix_smooth(benchmark, results_dir):
    report = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Fault matrix: sc exec error vs severity "
             "(fft-16, awgr -> crossbar, neighbor_gap policy)"]
    lines += report.summary_lines()
    save_and_print(results_dir, "fault_matrix", "\n".join(lines) + "\n")

    # Smooth degradation: no family may concentrate the pristine-to-naive
    # error range in one severity step (the captured-policy cliff does, at
    # ~2x the allowed slope, and is pinned as failing in the test-suite).
    assert report.breaches == {}, report.breaches
    for fam, pts in report.curves.items():
        errors = {sev: o.sc_exec_error_pct for sev, o in pts}
        # Shared pristine anchor keeps the paper's precision.
        assert errors[0.0] < 5.0, (fam, errors)
        # Nothing stalls under the neighbor policy, whatever the damage.
        assert all(o.sc_unreplayed == 0 for _, o in pts), fam
    assert all(o.passed for pts in report.curves.values() for _, o in pts)
