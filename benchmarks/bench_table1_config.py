"""Table 1 — simulated system configuration.

The paper's configuration table; here it is generated from the live config
objects (so it can never drift from what the simulator actually runs), and
the benchmark measures full-system construction cost.
"""

from __future__ import annotations

from conftest import save_and_print

from repro.engine import Simulator
from repro.harness import format_table
from repro.noc import ElectricalNetwork
from repro.onoc import build_optical_network, crossbar_ring_census
from repro.system import FullSystem, build_workload


def build_everything(exp):
    sim = Simulator(seed=exp.seed)
    net_e = ElectricalNetwork(sim, exp.noc)
    sim2 = Simulator(seed=exp.seed)
    net_o = build_optical_network(sim2, exp.onoc)
    progs = build_workload("fft", exp.system.num_cores, exp.seed)
    system = FullSystem(sim, exp.system, net_e, progs)
    return net_e, net_o, system


def test_table1_system_configuration(benchmark, exp_cfg, results_dir):
    net_e, net_o, system = benchmark.pedantic(
        build_everything, args=(exp_cfg,), rounds=1, iterations=1
    )
    s, n, o = exp_cfg.system, exp_cfg.noc, exp_cfg.onoc
    census = crossbar_ring_census(o.num_nodes, o.num_wavelengths)
    rows = [
        {"parameter": "cores", "value": f"{s.num_cores} in-order, blocking"},
        {"parameter": "L1 (private)", "value":
            f"{s.l1.size_bytes // 1024} KiB, {s.l1.assoc}-way, "
            f"{s.l1.line_bytes} B lines, {s.l1.hit_latency} cyc"},
        {"parameter": "L2 (shared, S-NUCA)", "value":
            f"{s.l2_slice.size_bytes // 1024} KiB/slice, "
            f"{s.l2_slice.assoc}-way, {s.l2_slice.hit_latency} cyc"},
        {"parameter": "coherence", "value": "MSI directory at home slice"},
        {"parameter": "memory", "value":
            f"{s.num_mem_ctrls} ctrls, {s.mem_latency} cyc"},
        {"parameter": "baseline NoC", "value":
            f"{n.width}x{n.height} {n.topology}, {n.routing} wormhole, "
            f"{n.num_vcs} VC x {n.vc_depth} flits, "
            f"{n.router_latency}-cyc router"},
        {"parameter": "flit size", "value": f"{n.flit_bytes} B"},
        {"parameter": "ONOC", "value":
            f"{o.num_nodes}-node {o.topology}, {o.num_wavelengths} λ x "
            f"{o.bitrate_gbps} Gb/s ({o.channel_gbps} Gb/s/channel)"},
        {"parameter": "microrings", "value": f"{census.total} total"},
        {"parameter": "clock", "value": f"{n.clock_ghz} GHz network/core"},
        {"parameter": "messages", "value":
            f"ctrl {exp_cfg.system.ctrl_msg_bytes} B / "
            f"data {exp_cfg.system.data_msg_bytes} B"},
    ]
    text = format_table(rows, title="Table 1: Simulated system configuration")
    save_and_print(results_dir, "table1_config", text)
    assert net_e.num_nodes == net_o.num_nodes == s.num_cores
