"""Production-scale synthetic replay: throughput + peak RSS vs trace size.

The synthetic generator (``repro.synth``) exists to take the simulator
beyond the captured corpus; this bench pins the claim that it actually
gets there.  For each trace size on the ladder (10^4 - 10^6 messages at
1024 nodes) it:

* **streams the trace into the binary container** with
  ``generate_to_file`` — generation never materializes the record list,
  so the bench itself is O(chunk) too;
* **replays it out-of-core** (``stream_naive_summary``) in a fresh
  subprocess, sampling peak RSS via ``/proc/self/status`` VmHWM (reset at
  exec, so the child measures only itself);
* **replays it fully in memory** (load + naive generational) in another
  subprocess, as the contrast curve.

The gate: streaming peak RSS must grow *sublinearly* in trace size — the
last/first RSS ratio stays below the last/first file-size ratio.  The
checked-in ``benchmarks/results/BENCH_scale.json`` records the full
ladder; CI re-runs the two-point smoke shape per commit and the full
ladder nightly.

Standalone::

    PYTHONPATH=src python benchmarks/bench_scale.py \
        --out benchmarks/results/BENCH_scale.json

    PYTHONPATH=src python benchmarks/bench_scale.py --smoke  # CI shape
"""

from __future__ import annotations

import json
import pathlib
import subprocess
import sys
import tempfile

from repro.synth import default_profile, generate_to_file

NODES = 1024
TOPOLOGY = "crossbar"
SEED = 20260808
#: Full in-memory replay is skipped above this size by default: the point
#: of the contrast curve is made long before the record list stops
#: fitting comfortably in RAM.
FULL_REPLAY_MAX = 200_000

SMOKE_SIZES = (10_000, 40_000)
LADDER_SIZES = (10_000, 100_000, 1_000_000)


def build_trace(n_messages: int, path: pathlib.Path) -> dict:
    profile = default_profile(NODES, n_messages, pattern="uniform")
    return generate_to_file(profile, path, seed=SEED)


# --------------------------------------------------------------------------
# Peak RSS + replay wall clock, fresh subprocess per point
# --------------------------------------------------------------------------

_RSS_CHILD = r"""
import json, re, resource, sys, time
from repro.config import OnocConfig


def peak_rss_kib():
    # /proc VmHWM is reset at exec so it measures *this* process only;
    # ru_maxrss would report the parent's peak for every child.
    try:
        with open("/proc/self/status") as f:
            return int(re.search(r"VmHWM:\s+(\d+) kB", f.read()).group(1))
    except (OSError, AttributeError):
        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss


mode, path = sys.argv[1], sys.argv[2]
onoc = OnocConfig(num_nodes=%(nodes)d)
t0 = time.perf_counter()
if mode == "stream":
    from repro.core import stream_naive_summary
    summary = stream_naive_summary(path, onoc)
    n = summary["messages"]
else:
    from repro.core import load_trace, replay_trace
    from repro.config import TraceConfig
    from repro.harness.builders import optical_factory
    trace = load_trace(path)
    res = replay_trace(trace, optical_factory(onoc, 1),
                       TraceConfig(mode="naive", engine="generational"))
    n = res.messages_replayed
wall = time.perf_counter() - t0
print(json.dumps({"messages": n, "rss_kib": peak_rss_kib(),
                  "wall_s": round(wall, 4)}))
"""


def _child(mode: str, path: pathlib.Path) -> dict:
    proc = subprocess.run(
        [sys.executable, "-c", _RSS_CHILD % {"nodes": NODES},
         mode, str(path)],
        capture_output=True, text=True, check=True,
        env={"PYTHONPATH": str(pathlib.Path(__file__).parent.parent / "src"),
             "PATH": "/usr/bin:/bin"})
    return json.loads(proc.stdout)


def measure_point(n_messages: int, tmp: pathlib.Path,
                  full_replay_max: int) -> dict:
    path = tmp / f"synth{n_messages}.rtrc"
    gen = build_trace(n_messages, path)
    stream = _child("stream", path)
    assert stream["messages"] == gen["messages"], (stream, gen)
    row = {
        "messages": gen["messages"],
        "file_bytes": gen["file_bytes"],
        "gen_wall_s": round(gen["wall_clock_s"], 3),
        "gen_msgs_per_s": round(gen["messages"] / gen["wall_clock_s"]),
        "stream_rss_kib": stream["rss_kib"],
        "stream_wall_s": stream["wall_s"],
        "stream_msgs_per_s": round(stream["messages"] / stream["wall_s"]),
    }
    if n_messages <= full_replay_max:
        full = _child("full", path)
        row["full_rss_kib"] = full["rss_kib"]
        row["full_wall_s"] = full["wall_s"]
    path.unlink()
    return row


def run(sizes: list[int],
        full_replay_max: int = FULL_REPLAY_MAX) -> dict:
    points = []
    with tempfile.TemporaryDirectory() as tmp:
        for n in sizes:
            points.append(measure_point(n, pathlib.Path(tmp),
                                        full_replay_max))
    first, last = points[0], points[-1]
    report = {
        "nodes": NODES,
        "topology": TOPOLOGY,
        "seed": SEED,
        "points": points,
        "trace_growth_x": round(
            last["file_bytes"] / first["file_bytes"], 3),
        "rss_growth_x": round(
            last["stream_rss_kib"] / first["stream_rss_kib"], 3),
    }
    report["sublinear"] = report["rss_growth_x"] < report["trace_growth_x"]
    return report


# ------------------------------------------------------------------ pytest

def test_scale_smoke(results_dir):
    """CI smoke gate: streaming peak RSS grows sublinearly in trace size."""
    report = run(list(SMOKE_SIZES))
    (results_dir / "scale_smoke.json").write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n")
    assert [p["messages"] for p in report["points"]] == list(SMOKE_SIZES)
    assert all(p["stream_msgs_per_s"] > 0 for p in report["points"])
    # The 4x trace must not cost 4x the memory to stream-replay.
    assert report["sublinear"], report
    # The full in-memory contrast must be the hungrier path at the top of
    # the smoke ladder, or the streaming path isn't buying anything.
    top = report["points"][-1]
    assert top["full_rss_kib"] > top["stream_rss_kib"], top


# -------------------------------------------------------------- standalone

def main() -> int:
    from conftest import standalone_parser, write_json_report

    ap = standalone_parser(
        __doc__,
        sizes=",".join(str(s) for s in LADDER_SIZES),
        full_replay_max=FULL_REPLAY_MAX,
        smoke=(False, "two small sizes (the per-commit CI shape)"),
    )
    args = ap.parse_args()
    if args.smoke:
        args.sizes = ",".join(str(s) for s in SMOKE_SIZES)
    sizes = [int(s) for s in args.sizes.split(",")]
    report = run(sizes, full_replay_max=int(args.full_replay_max))
    write_json_report(report, args.out)
    return 0 if report["sublinear"] else 1


if __name__ == "__main__":
    sys.exit(main())
