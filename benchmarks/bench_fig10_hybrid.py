"""Fig. 10 (extension) — path-adaptive opto-electronic hybrid NoC.

Sweeps the distance threshold at which traffic moves to the optical layer
(the authors' ISPA 2013 follow-up direction).  Threshold 0 = pure optical,
above-diameter = pure electrical.  Expected shape: performance moves
monotonically-ish from electrical-like to optical-like as the threshold
drops, while the hybrid's optical *traffic fraction* — and hence the share
of energy on the expensive layer — falls steeply with higher thresholds.
"""

from __future__ import annotations

from conftest import save_and_print

from repro.config import TraceConfig
from repro.core import compare_to_reference, replay_trace
from repro.engine import Simulator
from repro.harness import format_table, run_execution_driven
from repro.onoc import HybridConfig, HybridNetwork
from repro.power import electrical_energy_report, optical_energy_report
from repro.system import FullSystem, build_workload

THRESHOLDS = (0, 2, 3, 4, 7)
WORKLOAD = "fft"
REPLAY_CHECK_THRESHOLD = 3   # cross-check the trace model on this hybrid


def run_all(exp):
    programs = build_workload(WORKLOAD, exp.system.num_cores, exp.seed)
    rows = []
    replay_err = None
    for thr in THRESHOLDS:
        from repro.core import TraceCapture

        sim = Simulator(seed=exp.seed)
        hybrid_cfg = HybridConfig(noc=exp.noc, onoc=exp.onoc,
                                  optical_threshold=thr)
        net = HybridNetwork(sim, hybrid_cfg)
        cap = TraceCapture() if thr == REPLAY_CHECK_THRESHOLD else None
        system = FullSystem(sim, exp.system, net, programs, capture=cap)
        res = system.run(max_cycles=50_000_000)
        rep_e = electrical_energy_report(net.electrical, res.exec_time_cycles)
        rep_o = optical_energy_report(net.optical, res.exec_time_cycles)
        rows.append({
            "threshold": thr,
            "exec_time": res.exec_time_cycles,
            "optical_frac_%": round(100 * net.optical_fraction, 1),
            "avg_latency": round(net.stats.latency.mean, 1),
            "energy_uj": round(rep_e.total_energy_uj + rep_o.total_energy_uj, 3),
        })
        if cap is not None:
            # Cross-check: the electrically-captured trace, self-correcting,
            # must predict this hybrid's execution time too.
            ref_trace = cap.finalize()
            _, trace, _ = run_execution_driven(exp, WORKLOAD, "electrical")

            def hybrid_factory():
                s = Simulator(seed=exp.seed)
                return s, HybridNetwork(s, hybrid_cfg)

            result = replay_trace(trace, hybrid_factory,
                                  TraceConfig(mode="self_correcting"))
            replay_err = compare_to_reference(
                result, ref_trace).exec_time_error_pct
    return rows, replay_err


def test_fig10_hybrid_threshold_sweep(benchmark, exp_cfg, results_dir):
    rows, replay_err = benchmark.pedantic(run_all, args=(exp_cfg,), rounds=1,
                                          iterations=1)
    text = format_table(
        rows, title=f"Fig. 10: Path-adaptive hybrid threshold sweep ({WORKLOAD})")
    text += (f"\nself-correcting replay error on the threshold-"
             f"{REPLAY_CHECK_THRESHOLD} hybrid: {replay_err:.2f}%")
    save_and_print(results_dir, "fig10_hybrid", text)

    # The trace model generalises to the hybrid, with a caveat measured and
    # documented in EXPERIMENTS.md: per-message fidelity stays excellent
    # (mean-latency error < 1%) but the layer-coupled critical path is
    # reconstructed less tightly than on single-layer targets (~11% vs ~1%),
    # still 5x better than naive replay (~56%).
    assert replay_err is not None and replay_err < 15.0

    by_thr = {r["threshold"]: r for r in rows}
    # Traffic fraction is monotone in the threshold.
    fracs = [by_thr[t]["optical_frac_%"] for t in THRESHOLDS]
    assert fracs == sorted(fracs, reverse=True)
    assert by_thr[0]["optical_frac_%"] == 100.0
    assert by_thr[7]["optical_frac_%"] == 0.0
    # All-optical must beat all-electrical on this workload.
    assert by_thr[0]["exec_time"] < by_thr[7]["exec_time"]
