"""Fig. 4 — trace-model accuracy per application.

The paper's central accuracy result: predicted execution time error of the
naive timestamped replay vs the self-correction trace model, both replayed
onto the ONOC and judged against an execution-driven ONOC reference.
Expected shape: naive errors in the tens of percent (it replays the
electrical network's timing), self-correction in the low single digits
("high precision").

Thin loader over ``benchmarks/experiments/fig4_accuracy.yaml`` — the
declarative layer compiles the same sweep tasks the old hand-written
driver built, so cached results keep hitting; this file keeps the CLI
(pytest-benchmark), the rendered table, and the shape assertions.
"""

from __future__ import annotations

from conftest import run_experiment_config, save_and_print

from repro.harness import format_table


def test_fig4_exec_time_accuracy(benchmark, results_dir, sweep_runner):
    out = benchmark.pedantic(run_experiment_config,
                             args=("fig4_accuracy.yaml", sweep_runner),
                             rounds=1, iterations=1)
    text = format_table(
        out.rows,
        title="Fig. 4: Execution-time error, naive vs self-correcting")
    save_and_print(results_dir, "fig4_accuracy", text)

    # Shape: self-correction must beat naive per workload and be precise.
    for r in out.results:
        assert (r.self_correcting.exec_time_error_pct
                <= r.naive.exec_time_error_pct), r.workload
        assert r.self_correcting.exec_time_error_pct < 8.0, r.workload
