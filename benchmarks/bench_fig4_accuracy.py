"""Fig. 4 — trace-model accuracy per application.

The paper's central accuracy result: predicted execution time error of the
naive timestamped replay vs the self-correction trace model, both replayed
onto the ONOC and judged against an execution-driven ONOC reference.
Expected shape: naive errors in the tens of percent (it replays the
electrical network's timing), self-correction in the low single digits
("high precision").
"""

from __future__ import annotations

from conftest import ALL_WORKLOADS, save_and_print

from repro.harness import accuracy_rows_parallel, format_table


def run_all(runner, exp):
    return accuracy_rows_parallel(runner, exp, ALL_WORKLOADS)


def test_fig4_exec_time_accuracy(benchmark, exp_cfg, results_dir,
                                 sweep_runner):
    rows_raw = benchmark.pedantic(run_all, args=(sweep_runner, exp_cfg),
                                  rounds=1, iterations=1)
    rows = [{
        "workload": r.workload,
        "ref_exec": r.ref_exec_time,
        "naive_est": r.naive_estimate,
        "naive_err_%": round(r.naive.exec_time_error_pct, 2),
        "selfcorr_est": r.self_correcting_estimate,
        "selfcorr_err_%": round(r.self_correcting.exec_time_error_pct, 2),
        "messages": r.extra["trace_messages"],
    } for r in rows_raw]
    gmean_naive = _gmean([r["naive_err_%"] + 1 for r in rows]) - 1
    gmean_sc = _gmean([r["selfcorr_err_%"] + 1 for r in rows]) - 1
    rows.append({"workload": "gmean", "ref_exec": "",
                 "naive_est": "", "naive_err_%": round(gmean_naive, 2),
                 "selfcorr_est": "", "selfcorr_err_%": round(gmean_sc, 2),
                 "messages": ""})
    text = format_table(
        rows, title="Fig. 4: Execution-time error, naive vs self-correcting")
    save_and_print(results_dir, "fig4_accuracy", text)

    # Shape: self-correction must beat naive per workload and be precise.
    for r in rows_raw:
        assert (r.self_correcting.exec_time_error_pct
                <= r.naive.exec_time_error_pct), r.workload
        assert r.self_correcting.exec_time_error_pct < 8.0, r.workload


def _gmean(xs):
    import math

    return math.exp(sum(math.log(x) for x in xs) / len(xs))
