"""Shared benchmark infrastructure.

Every benchmark regenerates one table/figure from DESIGN.md's experiment
index: it runs the experiment once (``benchmark.pedantic(..., rounds=1)`` —
these are minutes-long simulations, not microbenchmarks), prints the
paper-style table, and persists it under ``benchmarks/results/`` so
EXPERIMENTS.md can reference the regenerated numbers.
"""

from __future__ import annotations

import json
import os
import pathlib

import pytest

from repro.config import default_16core_config
from repro.harness import SweepRunner

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
EXPERIMENTS_DIR = pathlib.Path(__file__).parent / "experiments"


def pytest_addoption(parser):
    parser.addoption(
        "--engine", action="store", default="event",
        choices=("event", "generational"),
        help="replay engine for the paper-figure benches (fig9, table2): "
             "the reference event-driven path or the vectorized "
             "generational path")


@pytest.fixture(scope="session")
def replay_engine(request) -> str:
    """Engine selected with ``--engine`` (default: event-driven)."""
    return request.config.getoption("--engine")


@pytest.fixture(scope="session")
def exp_cfg():
    """The paper-style 16-core configuration used by every experiment."""
    return default_16core_config().with_seed(7)


@pytest.fixture(scope="session")
def sweep_runner() -> SweepRunner:
    """Shared parallel sweep runner with the on-disk result cache.

    Worker count comes from ``REPRO_BENCH_JOBS`` (default 1: serial, which
    is usually right for these minutes-long single-machine runs; set it
    higher on a multi-core box, or 0 for one worker per CPU).  Results are
    cached under ``benchmarks/results/cache`` so a re-run after an
    unrelated edit replays from disk — ``python -m repro cache --clear``
    drops them.
    """
    jobs = int(os.environ.get("REPRO_BENCH_JOBS", "1"))
    return SweepRunner(workers=jobs if jobs != 0 else None,
                       cache_dir=RESULTS_DIR / "cache")


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_and_print(results_dir: pathlib.Path, name: str, text: str) -> None:
    """Persist a rendered table and echo it to the terminal."""
    (results_dir / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)


# All eight application kernels (the paper's case study used one real
# application; we sweep the full suite).  Canonically defined next to the
# experiment catalog so configs and benches can never disagree.
from repro.exp.catalog import ALL_WORKLOADS  # noqa: E402,F401


def run_experiment_config(name: str, runner: SweepRunner, **overrides):
    """Resolve and run one ``benchmarks/experiments/`` config.

    The paper-figure benches are thin loaders over this: the config states
    *what* to run, :mod:`repro.exp` compiles it to the same content-keyed
    sweep tasks the old hand-written drivers built (so caches keep hitting),
    and the returned :class:`repro.exp.RunOutcome` carries the table rows,
    the flat metric snapshot, and the raw per-task results the shape
    assertions inspect.
    """
    from repro.exp import resolve_config, run_experiment

    cfg = resolve_config(EXPERIMENTS_DIR / name, overrides or None)
    return run_experiment(cfg, runner)


def standalone_parser(description: str, **flags):
    """Shared argparse boilerplate for the standalone kernel/serve benches.

    ``flags`` maps a flag name to its default, or to ``(default, help)``;
    booleans become ``store_true`` switches.  The common ``--out`` (report
    destination, default: print only) is always appended — pass
    ``out=(default, help)`` to override it.
    """
    import argparse

    ap = argparse.ArgumentParser(description=description)
    if "out" not in flags:
        flags["out"] = (None, "write the JSON report here "
                              "(default: print only)")
    for name, spec in flags.items():
        default, help_text = spec if isinstance(spec, tuple) else (spec, None)
        opt = "--" + name.replace("_", "-")
        if isinstance(default, bool):
            ap.add_argument(opt, action="store_true", help=help_text)
        elif default is None:
            ap.add_argument(opt, default=None, help=help_text)
        else:
            ap.add_argument(opt, type=type(default), default=default,
                            help=help_text)
    return ap


def write_json_report(report: dict, out=None, sort_keys: bool = True) -> str:
    """Print a JSON report and optionally persist it (shared by the
    standalone benches' ``--out`` handling)."""
    text = json.dumps(report, indent=2, sort_keys=sort_keys)
    print(text)
    if out:
        out = pathlib.Path(out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(text + "\n")
        print(f"wrote {out}")
    return text
