"""Shared benchmark infrastructure.

Every benchmark regenerates one table/figure from DESIGN.md's experiment
index: it runs the experiment once (``benchmark.pedantic(..., rounds=1)`` —
these are minutes-long simulations, not microbenchmarks), prints the
paper-style table, and persists it under ``benchmarks/results/`` so
EXPERIMENTS.md can reference the regenerated numbers.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.config import default_16core_config
from repro.harness import SweepRunner

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def pytest_addoption(parser):
    parser.addoption(
        "--engine", action="store", default="event",
        choices=("event", "generational"),
        help="replay engine for the paper-figure benches (fig9, table2): "
             "the reference event-driven path or the vectorized "
             "generational path")


@pytest.fixture(scope="session")
def replay_engine(request) -> str:
    """Engine selected with ``--engine`` (default: event-driven)."""
    return request.config.getoption("--engine")


@pytest.fixture(scope="session")
def exp_cfg():
    """The paper-style 16-core configuration used by every experiment."""
    return default_16core_config().with_seed(7)


@pytest.fixture(scope="session")
def sweep_runner() -> SweepRunner:
    """Shared parallel sweep runner with the on-disk result cache.

    Worker count comes from ``REPRO_BENCH_JOBS`` (default 1: serial, which
    is usually right for these minutes-long single-machine runs; set it
    higher on a multi-core box, or 0 for one worker per CPU).  Results are
    cached under ``benchmarks/results/cache`` so a re-run after an
    unrelated edit replays from disk — ``python -m repro cache --clear``
    drops them.
    """
    jobs = int(os.environ.get("REPRO_BENCH_JOBS", "1"))
    return SweepRunner(workers=jobs if jobs != 0 else None,
                       cache_dir=RESULTS_DIR / "cache")


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_and_print(results_dir: pathlib.Path, name: str, text: str) -> None:
    """Persist a rendered table and echo it to the terminal."""
    (results_dir / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)


# All eight application kernels (the paper's case study used one real
# application; we sweep the full suite).
ALL_WORKLOADS = ("fft", "lu", "radix", "stencil", "prodcons", "randshare",
                 "barnes", "cholesky")
