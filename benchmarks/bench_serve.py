"""Serving throughput: the resident service under concurrent clients.

Measures the ``repro.serve`` request path end to end — NDJSON sockets,
admission, single-flight dedup, the worker pool, and the shared on-disk
result cache — using the ``echo`` loopback op so the numbers isolate
*service* overhead from simulation time.  Two phases per run:

* ``cold``  — every distinct payload computes on a worker; duplicate
  requests coalesce onto in-flight jobs (dedup hit rate).
* ``warm``  — the identical request mix again: everything answers from
  the on-disk cache without touching a worker.

Standalone::

    PYTHONPATH=src python benchmarks/bench_serve.py \
        --requests 400 --distinct 40 --clients 8 \
        --out benchmarks/results/BENCH_serve.json

``--fabric`` switches to the **multi-node soak**: an in-process N-node
serve fabric (consistent-hash routing, cross-node dedup, peer fetch)
driven closed-loop at a ladder of offered loads.  Each rung reports p50
and p99 submit latency, throughput, and the shed rate, so the output is
a latency/shed curve vs offered load::

    PYTHONPATH=src python benchmarks/bench_serve.py --fabric \
        --out benchmarks/results/BENCH_serve_fabric.json

Under pytest this runs with a small request count as a structural smoke
test only — timing assertions on shared CI boxes would be flaky.
"""

from __future__ import annotations

import asyncio
import itertools
import pathlib
import sys
import tempfile
import time

if __package__ in (None, ""):
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

from repro.serve import AsyncServeClient, Shed, SimulationServer


async def _drive(server: SimulationServer, clients: int, requests: int,
                 distinct: int, sleep_s: float) -> tuple[list, dict, float]:
    """Fire ``requests`` echo submits across ``clients`` connections."""
    conns = [await AsyncServeClient.connect(port=server.port)
             for _ in range(clients)]
    try:
        t0 = time.perf_counter()
        results = await asyncio.gather(*[
            conns[i % clients].submit("echo", {"payload": i % distinct},
                                      sleep_s=sleep_s)
            for i in range(requests)])
        wall_s = time.perf_counter() - t0
        status = await conns[0].status()
    finally:
        for c in conns:
            await c.close()
    return results, status, wall_s


def _phase(stats_before: dict, stats_after: dict, wall_s: float,
           requests: int) -> dict:
    delta = {k: stats_after[k] - stats_before.get(k, 0)
             for k in stats_after}
    served = (delta["executed"] + delta["cache_hits"]
              + delta["dedup_hits"] + delta["lru_hits"])
    return {
        "wall_s": round(wall_s, 4),
        "requests_per_sec": round(requests / wall_s, 1) if wall_s else 0.0,
        "executed": delta["executed"],
        "dedup_hits": delta["dedup_hits"],
        "cache_hits": delta["cache_hits"],
        "lru_hits": delta["lru_hits"],
        "dedup_hit_rate_pct": round(100 * delta["dedup_hits"] / served, 1)
        if served else 0.0,
        "shed": delta["shed"],
    }


def run_bench(requests: int, distinct: int, clients: int, workers: int,
              sleep_s: float, cache_dir: str) -> dict:
    """Cold (dedup) + warm (cache) phases against one fresh server."""

    async def _main() -> dict:
        server = SimulationServer(port=0, workers=workers,
                                  max_pending=requests + 1,
                                  cache_dir=cache_dir)
        await server.start()
        try:
            zero = {k: 0 for k in server.table.stats.as_dict()}
            report: dict = {
                "requests": requests, "distinct": distinct,
                "clients": clients, "workers": workers,
                "sleep_s": sleep_s, "phases": {},
            }
            before = zero
            for phase in ("cold", "warm"):
                results, status, wall_s = await _drive(
                    server, clients, requests, distinct, sleep_s)
                assert all(r == {"payload": i % distinct}
                           for i, r in enumerate(results))
                report["phases"][phase] = _phase(before, status["stats"],
                                                 wall_s, requests)
                before = status["stats"]
            return report
        finally:
            await server.aclose()

    return asyncio.run(_main())


# --------------------------------------------------------------------------
# Multi-node fabric soak: latency/shed curves vs offered load.
# --------------------------------------------------------------------------


async def _start_fabric(nodes: int, workers: int, max_pending: int,
                        cache_root: str) -> list[SimulationServer]:
    """An in-process fabric: node 0 seeds, the rest join through it.

    Each node gets its *own* cache directory so cross-node traffic
    (forwarding, peer fetch) is real work, not a shared-disk shortcut.
    """
    servers: list[SimulationServer] = []
    for i in range(nodes):
        peers = [f"127.0.0.1:{servers[0].port}"] if servers else []
        s = SimulationServer(
            port=0, node_id=f"bn{i}", workers=workers,
            max_pending=max_pending,
            cache_dir=str(pathlib.Path(cache_root) / f"node{i}"),
            peers=peers)
        await s.start()
        servers.append(s)
    while not all(len(s.membership.members) == nodes for s in servers):
        await asyncio.sleep(0.01)
    return servers


def _percentile_ms(sorted_s: list, q: float) -> float:
    if not sorted_s:
        return 0.0
    idx = min(len(sorted_s) - 1, int(q * (len(sorted_s) - 1) + 0.5))
    return round(sorted_s[idx] * 1000, 3)


async def _soak_level(servers: list, offered: int, requests: int,
                      distinct: int, sleep_s: float, tag: str) -> dict:
    """One rung of the load ladder: ``offered`` closed-loop submitters.

    Every submitter owns a connection to a node (round-robin over the
    fabric) and fires its next request as soon as the previous one
    finishes, so ``offered`` is the steady-state concurrency.  Shed
    responses count against the rung instead of being retried — the
    curve should show where admission control starts refusing.
    """
    clients = [await AsyncServeClient.connect(
        port=servers[i % len(servers)].port) for i in range(offered)]
    latencies: list = []
    shed = 0
    seq = itertools.count()

    async def submitter(c: AsyncServeClient) -> None:
        nonlocal shed
        while True:
            i = next(seq)
            if i >= requests:
                return
            payload = {"soak": tag, "i": i % distinct}
            t0 = time.perf_counter()
            try:
                await c.submit("echo", payload, sleep_s=sleep_s)
                latencies.append(time.perf_counter() - t0)
            except Shed:
                shed += 1

    before = {k: 0 for k in servers[0].table.stats.as_dict()}
    for s in servers:
        for k, v in s.table.stats.as_dict().items():
            before[k] += v
    t0 = time.perf_counter()
    try:
        await asyncio.gather(*[submitter(c) for c in clients])
    finally:
        for c in clients:
            await c.close()
    wall_s = time.perf_counter() - t0
    fabric = {k: -v for k, v in before.items()}
    for s in servers:
        for k, v in s.table.stats.as_dict().items():
            fabric[k] += v
    latencies.sort()
    return {
        "offered": offered,
        "completed": len(latencies),
        "shed": shed,
        "shed_rate_pct": round(100 * shed / requests, 2),
        "p50_ms": _percentile_ms(latencies, 0.50),
        "p99_ms": _percentile_ms(latencies, 0.99),
        "wall_s": round(wall_s, 4),
        "throughput_rps": round(len(latencies) / wall_s, 1)
        if wall_s else 0.0,
        "fabric": {k: fabric[k] for k in
                   ("executed", "dedup_hits", "lru_hits", "cache_hits",
                    "forwarded", "forward_failed", "peer_fetch_hits",
                    "peer_fetch_misses")},
    }


def run_fabric_bench(nodes: int, workers: int, max_pending: int,
                     levels: list, requests: int, distinct: int,
                     sleep_s: float, cache_root: str) -> dict:
    """The soak: one fabric, a ladder of offered loads, curve per rung."""

    async def _main() -> dict:
        servers = await _start_fabric(nodes, workers, max_pending,
                                      cache_root)
        try:
            report = {
                "nodes": nodes, "workers_per_node": workers,
                "max_pending": max_pending, "requests_per_level": requests,
                "distinct": distinct, "sleep_s": sleep_s,
                "levels": [],
            }
            for offered in levels:
                report["levels"].append(await _soak_level(
                    servers, offered, requests, distinct, sleep_s,
                    tag=f"L{offered}"))
            return report
        finally:
            for s in servers:
                await s.aclose()

    return asyncio.run(_main())


# --------------------------------------------------------------------------
# Pytest smoke: structure + dedup/cache accounting, no timing assertions.
# --------------------------------------------------------------------------


def test_serve_bench_smoke(tmp_path):
    report = run_bench(requests=40, distinct=8, clients=4, workers=2,
                       sleep_s=0.02, cache_dir=str(tmp_path))
    cold, warm = report["phases"]["cold"], report["phases"]["warm"]
    # Cold: 8 distinct jobs execute; the other 32 requests coalesce.
    assert cold["executed"] == 8
    assert cold["dedup_hits"] == 32
    assert cold["shed"] == 0
    # Warm: nothing executes; the cache tiers (hot LRU in front of the
    # on-disk store) answer every request without touching a worker.
    assert warm["executed"] == 0
    assert warm["lru_hits"] + warm["cache_hits"] + warm["dedup_hits"] == 40
    assert warm["lru_hits"] + warm["cache_hits"] >= 8
    assert report["phases"]["cold"]["requests_per_sec"] > 0


def test_serve_fabric_soak_smoke(tmp_path):
    """Structural smoke for the multi-node soak: the ladder runs, every
    request is accounted for (completed or shed), the percentiles are
    ordered, and the fabric actually routed cross-node work."""
    report = run_fabric_bench(nodes=3, workers=1, max_pending=32,
                              levels=[2, 6], requests=36, distinct=12,
                              sleep_s=0.005, cache_root=str(tmp_path))
    assert [lv["offered"] for lv in report["levels"]] == [2, 6]
    for lv in report["levels"]:
        assert lv["completed"] + lv["shed"] == 36
        assert 0 < lv["p50_ms"] <= lv["p99_ms"]
        assert lv["throughput_rps"] > 0
        assert lv["shed_rate_pct"] == round(100 * lv["shed"] / 36, 2)
    routed = sum(lv["fabric"]["forwarded"] for lv in report["levels"])
    assert routed > 0                   # keys really route across nodes
    served = sum(lv["fabric"]["executed"] + lv["fabric"]["lru_hits"]
                 + lv["fabric"]["cache_hits"] + lv["fabric"]["dedup_hits"]
                 for lv in report["levels"])
    assert served >= sum(lv["completed"] for lv in report["levels"])


def main(argv=None) -> int:
    from conftest import standalone_parser, write_json_report

    ap = standalone_parser(
        __doc__.splitlines()[0],
        requests=400,
        distinct=(40, "distinct payloads (requests/distinct = dup factor)"),
        clients=8,
        workers=4,
        sleep_s=(0.0, "per-job busy time (0 isolates service overhead)"),
        fabric=(False, "run the multi-node soak instead of the single-node "
                       "throughput phases"),
        nodes=(3, "[fabric] node count"),
        max_pending=(16, "[fabric] per-node admission queue bound"),
        levels=("4,8,16,32,64", "[fabric] offered-load ladder "
                                "(closed-loop submitter counts)"),
    )
    args = ap.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="bench-serve-") as cache_dir:
        if args.fabric:
            levels = [int(x) for x in str(args.levels).split(",") if x]
            report = run_fabric_bench(
                args.nodes, args.workers, args.max_pending, levels,
                args.requests, args.distinct,
                args.sleep_s or 0.01, cache_dir)
        else:
            report = run_bench(args.requests, args.distinct, args.clients,
                               args.workers, args.sleep_s, cache_dir)
    write_json_report(report, args.out)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
