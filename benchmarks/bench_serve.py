"""Serving throughput: the resident service under concurrent clients.

Measures the ``repro.serve`` request path end to end — NDJSON sockets,
admission, single-flight dedup, the worker pool, and the shared on-disk
result cache — using the ``echo`` loopback op so the numbers isolate
*service* overhead from simulation time.  Two phases per run:

* ``cold``  — every distinct payload computes on a worker; duplicate
  requests coalesce onto in-flight jobs (dedup hit rate).
* ``warm``  — the identical request mix again: everything answers from
  the on-disk cache without touching a worker.

Standalone::

    PYTHONPATH=src python benchmarks/bench_serve.py \
        --requests 400 --distinct 40 --clients 8 \
        --out benchmarks/results/BENCH_serve.json

Under pytest this runs with a small request count as a structural smoke
test only — timing assertions on shared CI boxes would be flaky.
"""

from __future__ import annotations

import asyncio
import pathlib
import sys
import tempfile
import time

if __package__ in (None, ""):
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))

from repro.serve import AsyncServeClient, SimulationServer


async def _drive(server: SimulationServer, clients: int, requests: int,
                 distinct: int, sleep_s: float) -> tuple[list, dict, float]:
    """Fire ``requests`` echo submits across ``clients`` connections."""
    conns = [await AsyncServeClient.connect(port=server.port)
             for _ in range(clients)]
    try:
        t0 = time.perf_counter()
        results = await asyncio.gather(*[
            conns[i % clients].submit("echo", {"payload": i % distinct},
                                      sleep_s=sleep_s)
            for i in range(requests)])
        wall_s = time.perf_counter() - t0
        status = await conns[0].status()
    finally:
        for c in conns:
            await c.close()
    return results, status, wall_s


def _phase(stats_before: dict, stats_after: dict, wall_s: float,
           requests: int) -> dict:
    delta = {k: stats_after[k] - stats_before.get(k, 0)
             for k in stats_after}
    served = delta["executed"] + delta["cache_hits"] + delta["dedup_hits"]
    return {
        "wall_s": round(wall_s, 4),
        "requests_per_sec": round(requests / wall_s, 1) if wall_s else 0.0,
        "executed": delta["executed"],
        "dedup_hits": delta["dedup_hits"],
        "cache_hits": delta["cache_hits"],
        "dedup_hit_rate_pct": round(100 * delta["dedup_hits"] / served, 1)
        if served else 0.0,
        "shed": delta["shed"],
    }


def run_bench(requests: int, distinct: int, clients: int, workers: int,
              sleep_s: float, cache_dir: str) -> dict:
    """Cold (dedup) + warm (cache) phases against one fresh server."""

    async def _main() -> dict:
        server = SimulationServer(port=0, workers=workers,
                                  max_pending=requests + 1,
                                  cache_dir=cache_dir)
        await server.start()
        try:
            zero = {k: 0 for k in server.table.stats.as_dict()}
            report: dict = {
                "requests": requests, "distinct": distinct,
                "clients": clients, "workers": workers,
                "sleep_s": sleep_s, "phases": {},
            }
            before = zero
            for phase in ("cold", "warm"):
                results, status, wall_s = await _drive(
                    server, clients, requests, distinct, sleep_s)
                assert all(r == {"payload": i % distinct}
                           for i, r in enumerate(results))
                report["phases"][phase] = _phase(before, status["stats"],
                                                 wall_s, requests)
                before = status["stats"]
            return report
        finally:
            await server.aclose()

    return asyncio.run(_main())


# --------------------------------------------------------------------------
# Pytest smoke: structure + dedup/cache accounting, no timing assertions.
# --------------------------------------------------------------------------


def test_serve_bench_smoke(tmp_path):
    report = run_bench(requests=40, distinct=8, clients=4, workers=2,
                       sleep_s=0.02, cache_dir=str(tmp_path))
    cold, warm = report["phases"]["cold"], report["phases"]["warm"]
    # Cold: 8 distinct jobs execute; the other 32 requests coalesce.
    assert cold["executed"] == 8
    assert cold["dedup_hits"] == 32
    assert cold["shed"] == 0
    # Warm: nothing executes; the on-disk cache answers every fresh job.
    assert warm["executed"] == 0
    assert warm["cache_hits"] + warm["dedup_hits"] == 40
    assert warm["cache_hits"] >= 8
    assert report["phases"]["cold"]["requests_per_sec"] > 0


def main(argv=None) -> int:
    from conftest import standalone_parser, write_json_report

    ap = standalone_parser(
        __doc__.splitlines()[0],
        requests=400,
        distinct=(40, "distinct payloads (requests/distinct = dup factor)"),
        clients=8,
        workers=4,
        sleep_s=(0.0, "per-job busy time (0 isolates service overhead)"),
    )
    args = ap.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="bench-serve-") as cache_dir:
        report = run_bench(args.requests, args.distinct, args.clients,
                           args.workers, args.sleep_s, cache_dir)
    write_json_report(report, args.out)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
