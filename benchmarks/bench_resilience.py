"""Resilience — mitigation-policy penalty curves under the checked-in
reference fault timeseries.

Replays the fft-16 electrical capture on the optical crossbar while the
reference degradation timeseries (``benchmarks/data/
resilience_reference.csv`` — all three generator families at full
intensity, seed-pinned) hits the fabric mid-replay, once per mitigation
policy.  The per-epoch penalty timeseries (``repro.resilience``'s
degradation-level / penalty-cycle curve) for every policy is written to
``benchmarks/results/BENCH_resilience.json`` so the measured
policy-vs-penalty trade-off is checked in alongside the other artifacts:

* ``none``       — take the raw slowdown;
* ``disable``    — drop links past the threshold, pay detour latency but
  shed the worst serialization stretch;
* ``reallocate`` — retune wavelengths within spare capacity, pay a flat
  retune cost per touched message.

The pytest wrapper is the CI resilience-smoke gate: the policies must
produce *distinct* penalty curves (if two coincide, the mitigation layer
is dead code) and ``disable`` must actually detour under this timeseries.

Standalone::

    PYTHONPATH=src python benchmarks/bench_resilience.py \
        --out benchmarks/results/BENCH_resilience.json
"""

from __future__ import annotations

import json
import pathlib

from repro.config import MITIGATIONS
from repro.harness.builders import experiment_from_params
from repro.harness.experiments import resilience_point
from repro.resilience import FaultTimeseries

DATA_DIR = pathlib.Path(__file__).parent / "data"
REFERENCE = DATA_DIR / "resilience_reference.csv"

WORKLOAD = "fft"
SCALE = 0.25


def run(reference: pathlib.Path = REFERENCE) -> dict:
    """One degraded replay per mitigation policy, as a JSON-ready report."""
    series = FaultTimeseries.from_text(reference.read_text())
    exp = experiment_from_params(cores=16, seed=7, wavelengths=64)
    policies = {}
    for mitigation in MITIGATIONS:
        r = resilience_point(exp, WORKLOAD, "", 0.0, mitigation,
                             scale=SCALE, fault_events=series.as_tuples())
        policies[mitigation] = {
            "exec_stock": r["exec_stock"],
            "exec_degraded": r["exec_degraded"],
            "slowdown_pct": r["slowdown_pct"],
            "penalty": r["penalty"],
            "curve": r["curve"],
        }
    return {
        "workload": WORKLOAD,
        "scale": SCALE,
        "reference": {"file": str(reference.name), "events": len(series)},
        "policies": policies,
    }


def check(report: dict) -> None:
    """The resilience-smoke assertions (shared by pytest and standalone)."""
    pols = report["policies"]
    totals = {m: p["penalty"]["total_cycles"] for m, p in pols.items()}
    assert all(t > 0 for t in totals.values()), totals
    # Distinct policy trade-offs: if two mitigation policies produce the
    # same penalty, the policy layer is not actually being exercised.
    assert totals["disable"] != totals["reallocate"], totals
    assert pols["disable"]["curve"] != pols["reallocate"]["curve"]
    # disable must cross its drop threshold under this timeseries ...
    assert pols["disable"]["penalty"]["detour_cycles"] > 0, pols["disable"]
    # ... and reallocate must pay its retune cost.
    assert pols["reallocate"]["penalty"]["retune_cycles"] > 0
    # The per-epoch curves cover every fault epoch for every policy.
    events = report["reference"]["events"]
    for mitigation, p in pols.items():
        assert len(p["curve"]) == events, (mitigation, len(p["curve"]))


def test_resilience_policy_curves(benchmark, results_dir):
    report = benchmark.pedantic(run, rounds=1, iterations=1)
    check(report)
    out = results_dir / "BENCH_resilience.json"
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    totals = {m: p["penalty"]["total_cycles"]
              for m, p in report["policies"].items()}
    print(f"\nresilience penalties (cycles): {totals} -> {out}")


def main() -> int:
    from conftest import standalone_parser

    ap = standalone_parser(
        "Mitigation-policy penalty curves under the reference "
        "fault timeseries",
        reference=(str(REFERENCE), "fault-timeseries CSV/JSON file"))
    args = ap.parse_args()
    report = run(pathlib.Path(args.reference))
    check(report)
    text = json.dumps(report, indent=2, sort_keys=True)
    if args.out:
        pathlib.Path(args.out).write_text(text + "\n")
        print(f"wrote {args.out}")
    else:
        print(text)
    return 0


if __name__ == "__main__":
    import sys

    sys.path.insert(0, str(pathlib.Path(__file__).parent))
    sys.exit(main())
