"""Fig. 3 — load-latency curves: electrical mesh vs optical crossbar.

Regenerates the network-characterisation figure: average message latency vs
offered load for the classic synthetic patterns on both interconnects.  The
expected *shape*: the ONOC's curve is flatter (distance-independent, high
bandwidth) and saturates later on permutation traffic; the electrical mesh
wins nothing but costs less (see Table 4).
"""

from __future__ import annotations

from conftest import save_and_print

from repro.harness import format_table, load_latency_sweep_parallel

PATTERNS = ("uniform", "transpose", "hotspot")
RATES = (0.02, 0.05, 0.1, 0.2, 0.3, 0.45)
NETWORKS = (("electrical", "electrical"), ("optical", "crossbar"))


def sweep_all(runner, exp):
    rows = []
    for pattern in PATTERNS:
        for label, network in NETWORKS:
            points = load_latency_sweep_parallel(
                runner, network, exp, pattern, RATES,
                warmup=300, measure=1500)
            for p in points:
                rows.append({
                    "pattern": pattern,
                    "network": label,
                    "rate": p.injection_rate,
                    "avg_latency": round(p.avg_latency, 1),
                    "p99": p.p99_latency,
                    "throughput": round(p.throughput_flits_cycle, 3),
                    "saturated": p.saturated,
                })
    return rows


def test_fig3_load_latency(benchmark, exp_cfg, results_dir, sweep_runner):
    rows = benchmark.pedantic(sweep_all, args=(sweep_runner, exp_cfg),
                              rounds=1, iterations=1)
    text = format_table(
        rows, title="Fig. 3: Load-latency, electrical mesh vs ONOC crossbar")
    save_and_print(results_dir, "fig3_load_latency", text)

    # Shape checks: at low load the optical crossbar beats the mesh on
    # every pattern.
    for pattern in PATTERNS:
        lat = {
            r["network"]: r["avg_latency"] for r in rows
            if r["pattern"] == pattern and r["rate"] == RATES[0]
        }
        assert lat["optical"] < lat["electrical"], pattern
    # The mesh saturates somewhere within the swept range on transpose.
    mesh_transpose = [r for r in rows if r["pattern"] == "transpose"
                      and r["network"] == "electrical"]
    assert any(r["saturated"] for r in mesh_transpose) or \
        len(mesh_transpose) == len(RATES)
