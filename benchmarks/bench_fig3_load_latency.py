"""Fig. 3 — load-latency curves: electrical mesh vs optical crossbar.

Regenerates the network-characterisation figure: average message latency vs
offered load for the classic synthetic patterns on both interconnects.  The
expected *shape*: the ONOC's curve is flatter (distance-independent, high
bandwidth) and saturates later on permutation traffic; the electrical mesh
wins nothing but costs less (see Table 4).

Thin loader over ``benchmarks/experiments/fig3_load_latency.yaml`` — the
declarative layer compiles the same content-keyed sweep tasks the old
hand-written driver built, so cached results keep hitting; this file keeps
the pytest-benchmark CLI, the rendered table, and the shape assertions.
"""

from __future__ import annotations

from conftest import run_experiment_config, save_and_print

from repro.harness import format_table


def test_fig3_load_latency(benchmark, results_dir, sweep_runner):
    out = benchmark.pedantic(run_experiment_config,
                             args=("fig3_load_latency.yaml", sweep_runner),
                             rounds=1, iterations=1)
    rows = out.rows
    text = format_table(
        rows, title="Fig. 3: Load-latency, electrical mesh vs ONOC crossbar")
    save_and_print(results_dir, "fig3_load_latency", text)

    patterns = out.resolved.parameters["patterns"]
    rates = out.resolved.parameters["rates"]
    # Shape checks: at low load the optical crossbar beats the mesh on
    # every pattern.
    for pattern in patterns:
        lat = {
            r["network"]: r["avg_latency"] for r in rows
            if r["pattern"] == pattern and r["rate"] == rates[0]
        }
        assert lat["optical"] < lat["electrical"], pattern
    # The mesh saturates somewhere within the swept range on transpose.
    mesh_transpose = [r for r in rows if r["pattern"] == "transpose"
                      and r["network"] == "electrical"]
    assert any(r["saturated"] for r in mesh_transpose) or \
        len(mesh_transpose) == len(rates)
