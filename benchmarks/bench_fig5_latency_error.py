"""Fig. 5 — per-message network-latency error distribution.

Beyond whole-run execution time, how faithfully does each replay mode
reproduce *individual* message latencies on the target network?  Reported:
mean-latency error plus the per-message MAPE and matched-message counts.
Expected shape: self-correction tracks the mean closely; per-message MAPE is
noisier for both modes (arbitration-order noise on short control messages)
but clearly better under self-correction for the bursty workloads.
"""

from __future__ import annotations

from conftest import save_and_print

from repro.config import TraceConfig
from repro.core import compare_to_reference, replay_trace
from repro.harness import format_table, optical_factory, run_execution_driven

WORKLOADS = ("fft", "lu", "prodcons", "randshare")


def run_all(exp):
    rows = []
    for wl in WORKLOADS:
        _, trace, _ = run_execution_driven(exp, wl, "electrical")
        _, ref_trace, _ = run_execution_driven(exp, wl, "optical")
        factory = optical_factory(exp.onoc, exp.seed)
        for mode in ("naive", "self_correcting"):
            rep = compare_to_reference(
                replay_trace(trace, factory, TraceConfig(mode=mode)),
                ref_trace,
            )
            rows.append({
                "workload": wl,
                "mode": mode,
                "mean_lat_err_%": round(rep.mean_latency_error_pct, 2),
                "per_msg_mape_%": round(rep.latency_mape_pct, 1),
                "matched": rep.matched_messages,
                "unmatched": rep.unmatched_messages,
            })
    return rows


def test_fig5_latency_error(benchmark, exp_cfg, results_dir):
    rows = benchmark.pedantic(run_all, args=(exp_cfg,), rounds=1,
                              iterations=1)
    text = format_table(
        rows, title="Fig. 5: Per-message latency fidelity on the ONOC")
    save_and_print(results_dir, "fig5_latency_error", text)

    # Shape: averaged over workloads, self-correction reproduces the mean
    # latency better than naive replay.
    naive = [r["mean_lat_err_%"] for r in rows if r["mode"] == "naive"]
    sc = [r["mean_lat_err_%"] for r in rows if r["mode"] == "self_correcting"]
    assert sum(sc) / len(sc) < sum(naive) / len(naive)
