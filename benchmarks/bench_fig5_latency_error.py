"""Fig. 5 — per-message network-latency error distribution.

Beyond whole-run execution time, how faithfully does each replay mode
reproduce *individual* message latencies on the target network?  Reported:
mean-latency error plus the per-message MAPE and matched-message counts.
Expected shape: self-correction tracks the mean closely; per-message MAPE is
noisier for both modes (arbitration-order noise on short control messages)
but clearly better under self-correction for the bursty workloads.

Thin loader over ``benchmarks/experiments/fig5_latency_error.yaml``.
"""

from __future__ import annotations

from conftest import run_experiment_config, save_and_print

from repro.harness import format_table


def test_fig5_latency_error(benchmark, results_dir, sweep_runner):
    out = benchmark.pedantic(run_experiment_config,
                             args=("fig5_latency_error.yaml", sweep_runner),
                             rounds=1, iterations=1)
    rows = out.rows
    text = format_table(
        rows, title="Fig. 5: Per-message latency fidelity on the ONOC")
    save_and_print(results_dir, "fig5_latency_error", text)

    # Shape: averaged over workloads, self-correction reproduces the mean
    # latency better than naive replay.
    naive = [r["mean_lat_err_%"] for r in rows if r["mode"] == "naive"]
    sc = [r["mean_lat_err_%"] for r in rows if r["mode"] == "self_correcting"]
    assert sum(sc) / len(sc) < sum(naive) / len(naive)
