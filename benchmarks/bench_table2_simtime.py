"""Table 2 — simulation wall-clock time per methodology.

The abstract's second claim: the self-correction trace flow achieves its
precision "while not substantially extend[ing] the total simulation time".
Reported per workload: execution-driven full-system run on the ONOC, the
one-off electrical capture run, and both replay modes.  Expected shape:
replays are at least as fast as the execution-driven reference (they skip
the core/cache/directory machinery), so amortised over the design points an
architect sweeps, the trace flow wins.
"""

from __future__ import annotations

from conftest import ALL_WORKLOADS, save_and_print

from repro.harness import format_table, simtime_experiment


def run_all(exp, engine: str = "event"):
    return [simtime_experiment(exp, wl, engine=engine)
            for wl in ALL_WORKLOADS]


def test_table2_simulation_time(benchmark, exp_cfg, results_dir,
                                replay_engine):
    rows_raw = benchmark.pedantic(run_all, args=(exp_cfg, replay_engine),
                                  rounds=1, iterations=1)
    rows = [{
        "workload": r.workload,
        "exec_driven_s": round(r.exec_driven_s, 3),
        "capture_run_s": round(r.capture_overhead_s, 3),
        "naive_replay_s": round(r.naive_replay_s, 3),
        "selfcorr_replay_s": round(r.self_correcting_s, 3),
        "replay_speedup_x": round(r.replay_speedup, 2),
    } for r in rows_raw]
    text = format_table(
        rows, title="Table 2: Wall-clock simulation time per methodology "
                    f"({replay_engine} engine)")
    save_and_print(results_dir, "table2_simtime", text)

    # Shape: self-correcting replay must not substantially extend the
    # simulation time vs the execution-driven ONOC run (claim: <= ~1.5x).
    for r in rows_raw:
        assert r.self_correcting_s <= 1.5 * r.exec_driven_s + 0.05, r.workload
