"""Table 2 — simulation wall-clock time per methodology.

The abstract's second claim: the self-correction trace flow achieves its
precision "while not substantially extend[ing] the total simulation time".
Reported per workload: execution-driven full-system run on the ONOC, the
one-off electrical capture run, and both replay modes.  Expected shape:
replays are at least as fast as the execution-driven reference (they skip
the core/cache/directory machinery), so amortised over the design points an
architect sweeps, the trace flow wins.

Thin loader over ``benchmarks/experiments/table2_simtime.yaml``; the
``--engine`` pytest flag flows in as a parameter override.
"""

from __future__ import annotations

from conftest import run_experiment_config, save_and_print

from repro.harness import format_table


def test_table2_simulation_time(benchmark, results_dir, sweep_runner,
                                replay_engine):
    out = benchmark.pedantic(
        run_experiment_config,
        args=("table2_simtime.yaml", sweep_runner),
        kwargs={"engine": replay_engine},
        rounds=1, iterations=1)
    text = format_table(
        out.rows, title="Table 2: Wall-clock simulation time per methodology "
                        f"({replay_engine} engine)")
    save_and_print(results_dir, "table2_simtime", text)

    # Shape: self-correcting replay must not substantially extend the
    # simulation time vs the execution-driven ONOC run (claim: <= ~1.5x).
    for r in out.results:
        assert r.self_correcting_s <= 1.5 * r.exec_driven_s + 0.05, r.workload
